//! Hourly online re-optimization (§6's evaluation protocol): each hour,
//! re-solve joint caching and routing against the *forecast* demand —
//! warm-started from the previous hour's placement — and account the
//! realized cost/congestion under the *true* demand.
//!
//! The paper runs this loop with GPR forecasts ("the network provider
//! adjusts caching and routing decisions on an hourly basis based on the
//! predicted demand"); this module packages it as a reusable driver and
//! additionally reports cache churn (how many items move per hour), the
//! operational cost a provider would watch.
//!
//! # The anytime degradation ladder
//!
//! A production control loop cannot afford to skip an hour because the
//! solver ran out of time or the instance turned hostile (failed links,
//! demand spikes). [`OnlineSimulator::step_anytime`] therefore runs each
//! hour under the hour's wall-clock budget (via
//! [`SolverContext`]) and, on failure, walks an
//! explicit ladder of increasingly cheap fallbacks:
//!
//! 1. [`Rung::Full`] — the full alternating re-solve, warm-started from
//!    every piece of carried state (placement, LP basis, column pool,
//!    carried oracle rows);
//! 2. [`Rung::ColdRestore`] — when the full solve *with carried state*
//!    failed for a reason other than the budget, retry once from scratch
//!    with every carried component dropped (a restored-but-poisoned
//!    snapshot component must degrade to cold, never wedge the hour);
//! 3. [`Rung::Incumbent`] — on [`JcrError::BudgetExceeded`], the
//!    validated best incumbent the interrupted solve produced;
//! 4. [`Rung::RetryHalved`] — one retry with halved iteration caps under
//!    the remaining budget;
//! 5. [`Rung::RoutingOnly`] — re-route over the carried placement without
//!    touching the caches;
//! 6. [`Rung::CarryForward`] — repair the previous hour's solution
//!    against the current instance ([`crate::repair`]) and serve from it.
//!
//! Every candidate is checked with [`validate_solution`] before it is
//! served; the rung that produced the served solution is recorded in
//! [`HourOutcome::rung`] and streamed as a structured `"rung"` event
//! through the configured [`Probe`].
//!
//! # Crash recovery
//!
//! [`OnlineSimulator::snapshot`] captures the carried state as a
//! [`SolverState`] and [`OnlineSimulator::restore`] rebuilds a simulator
//! from one, independently validating each component (placement bitset,
//! routing, LP basis, column pool) and degrading whatever fails to cold
//! — reported per component in [`RestoreReport`], never an error. Carried
//! distance-oracle rows are *not* part of the snapshot: they are re-
//! derived (and re-verified) from each hour's instance, and carried rows
//! are bit-identical to fresh ones, so a resumed run replays the exact
//! bits of an uninterrupted one.

use std::fmt;
use std::rc::Rc;
use std::time::{Duration, Instant};

use jcr_ctx::{Budget, Phase, Probe, SolverContext};
use jcr_graph::{DistanceOracle, EdgeId, NodeId, Path};

use crate::alternating::Alternating;
use crate::error::JcrError;
use crate::instance::Instance;
use crate::placement::Placement;
use crate::repair::{repair_solution, RepairStats};
use crate::rnr;
use crate::routing::{Routing, Solution};
use crate::state::{ColumnRecord, FlowRecord, SolverState};
use crate::validate::validate_solution;

/// A carried column-generation column: the commodity it priced for and
/// its auxiliary-graph node sequence (see
/// [`jcr_flow::multicommodity::min_cost_multicommodity_seeded`]).
pub type CarriedColumn = (usize, Vec<NodeId>);

/// The degradation-ladder rung that served an hour (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rung {
    /// Full alternating re-solve succeeded.
    Full,
    /// The full solve failed with carried state; a from-scratch re-solve
    /// with every carried component dropped served instead.
    ColdRestore,
    /// Budget tripped; the interrupted solve's best incumbent served.
    Incumbent,
    /// A retry with halved iteration caps served.
    RetryHalved,
    /// Routing-only re-solve over the carried placement served.
    RoutingOnly,
    /// The previous hour's solution served after repair.
    CarryForward,
}

impl Rung {
    /// All rungs, in ladder order.
    pub const ALL: [Rung; 6] = [
        Rung::Full,
        Rung::ColdRestore,
        Rung::Incumbent,
        Rung::RetryHalved,
        Rung::RoutingOnly,
        Rung::CarryForward,
    ];

    /// Stable human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Rung::Full => "full",
            Rung::ColdRestore => "cold-restore",
            Rung::Incumbent => "incumbent",
            Rung::RetryHalved => "retry-halved",
            Rung::RoutingOnly => "routing-only",
            Rung::CarryForward => "carry-forward",
        }
    }

    /// Position in [`Rung::ALL`] (for histogram indexing).
    pub fn index(self) -> usize {
        match self {
            Rung::Full => 0,
            Rung::ColdRestore => 1,
            Rung::Incumbent => 2,
            Rung::RetryHalved => 3,
            Rung::RoutingOnly => 4,
            Rung::CarryForward => 5,
        }
    }
}

impl fmt::Display for Rung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration for [`OnlineSimulator::step_anytime`].
#[derive(Default)]
pub struct AnytimeConfig {
    /// The hour's solver budget. The wall-clock deadline, if any, spans
    /// the *whole* ladder: later rungs run under whatever remains.
    pub budget: Budget,
    /// Structured-event sink: rung transitions are emitted as `"rung"`
    /// events, and every per-rung [`SolverContext`] mirrors its counters
    /// and phase timings here (e.g. a
    /// [`JsonLinesProbe`](jcr_ctx::probe::JsonLinesProbe)).
    pub probe: Option<Rc<dyn Probe>>,
}

impl fmt::Debug for AnytimeConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnytimeConfig")
            .field("budget", &self.budget)
            .field("probe", &self.probe.is_some())
            .finish()
    }
}

impl AnytimeConfig {
    /// An unlimited budget and no probe.
    pub fn new() -> Self {
        AnytimeConfig::default()
    }

    /// Sets the hour budget (builder style).
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the structured-event probe (builder style).
    pub fn with_probe(mut self, probe: Rc<dyn Probe>) -> Self {
        self.probe = Some(probe);
        self
    }
}

/// Outcome of one online step.
#[derive(Clone, Debug)]
pub struct HourOutcome {
    /// Cost of the decision under the demand it was optimized for.
    pub decided_cost: f64,
    /// Cost realized under the true demand.
    pub realized_cost: f64,
    /// Congestion realized under the true demand.
    pub realized_congestion: f64,
    /// Items inserted plus evicted relative to the previous hour's
    /// placement (cache churn).
    pub placement_churn: usize,
    /// The degradation-ladder rung that produced the solution
    /// ([`Rung::Full`] when the regular solve succeeded).
    pub rung: Rung,
    /// Repair work performed on the served candidate: always present for
    /// [`Rung::CarryForward`], and on earlier rungs whenever the
    /// candidate needed a repair polish (e.g. a slight link overload from
    /// the bicriteria rounding) to pass validation.
    pub repair: Option<RepairStats>,
    /// Independent certificate of the served solution
    /// ([`certify_solution`](crate::certify::certify_solution); link
    /// capacities recorded but not gated — the rounding is bicriteria).
    /// Serving is gated on [`validate_solution`] instead, so an outcome
    /// can carry a non-verified certificate only via the raw
    /// [`OnlineSimulator::step`] path.
    pub certificate: jcr_ctx::cert::Certificate,
    /// The decision itself.
    pub solution: Solution,
}

/// The hour-by-hour re-optimization driver.
#[derive(Clone, Debug)]
pub struct OnlineSimulator {
    solver: Alternating,
    /// Warm-start each hour from the previous placement (vs from empty
    /// caches).
    pub warm_start: bool,
    previous: Option<Solution>,
    /// Simplex basis of the previous hour's last placement LP, threaded
    /// into the next hour's solve. Best effort: an hour whose LP shape
    /// drifted (topology delta, different segment structure) falls back to
    /// a cold solve on its own. Only [`OnlineSimulator::commit`] updates
    /// this, so a failed hour keeps the last good basis and retries
    /// bit-identically.
    lp_basis: Option<jcr_lp::Basis>,
    /// Active CG columns of the last committed hour, re-priced into the
    /// next hour's first master ([`Alternating::solve_from_with_carry`]).
    /// Stale columns (endpoints moved, edges gone) are revalidated and
    /// dropped per hour by the flow layer, so this is only ever a seed.
    column_pool: Vec<CarriedColumn>,
    /// Resident-row clone of the last committed hour's distance oracle,
    /// offered to the next hour's instance via
    /// [`Instance::adopt_all_pairs_from`]. Speed-only state: carried rows
    /// are bit-identical to fresh ones, so it is not snapshotted.
    prev_oracle: Option<DistanceOracle>,
    /// A placement restored from a snapshot whose routing component was
    /// degraded: still usable to warm-start the next hour even though no
    /// full previous [`Solution`] exists. Cleared by the first commit.
    seed_placement: Option<Placement>,
    /// Dimensions of the instance the carried state was committed
    /// against (nodes, items, edges, requests) — recorded into snapshots
    /// so the restore gate can bounds-check every component.
    dims: Option<(u32, u32, u32, u32)>,
    hour: usize,
}

/// Fate of one snapshot component at restore time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ComponentStatus {
    /// Decoded, validated, and carried into the simulator.
    Restored,
    /// Present in the snapshot but failed validation; the simulator runs
    /// cold for this component (the reason says why).
    Degraded(&'static str),
    /// Not present in the snapshot.
    Absent,
}

impl ComponentStatus {
    /// Whether the component made it into the simulator.
    pub fn restored(self) -> bool {
        self == ComponentStatus::Restored
    }
}

/// Per-component outcome of [`OnlineSimulator::restore`]. Degradation is
/// deliberate: a snapshot with a corrupt basis still restores its
/// placement, and vice versa — the ladder absorbs whatever is missing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RestoreReport {
    /// The committed placement bitset.
    pub placement: ComponentStatus,
    /// The served routing (degrades independently of the placement).
    pub routing: ComponentStatus,
    /// The simplex warm-start basis.
    pub basis: ComponentStatus,
    /// The carried CG column pool.
    pub columns: ComponentStatus,
}

impl OnlineSimulator {
    /// Creates a driver around an [`Alternating`] configuration.
    pub fn new(solver: Alternating) -> Self {
        OnlineSimulator {
            solver,
            warm_start: true,
            previous: None,
            lp_basis: None,
            column_pool: Vec::new(),
            prev_oracle: None,
            seed_placement: None,
            dims: None,
            hour: 0,
        }
    }

    /// Number of steps executed so far.
    pub fn hour(&self) -> usize {
        self.hour
    }

    /// Executes one hour: optimize against `decision_inst` (built from the
    /// forecast demand), then evaluate against `true_rates` (aligned with
    /// `decision_inst.requests`, as produced by flooring the demand matrix
    /// — see the bench harness).
    ///
    /// # Errors
    ///
    /// Propagates solver failures. A failed hour leaves the simulator
    /// untouched — same hour counter, same per-hour seed perturbation,
    /// same carried solution — so retrying it reproduces the unfailed
    /// step bit for bit.
    pub fn step(
        &mut self,
        decision_inst: &Instance,
        true_rates: &[f64],
    ) -> Result<HourOutcome, JcrError> {
        let ctx = SolverContext::new();
        self.offer_oracle(decision_inst, &ctx);
        let solver = self.hour_solver();
        let initial = self.initial_placement(decision_inst);
        let (result, basis, pool) = solver.solve_from_with_carry(
            decision_inst,
            initial,
            self.lp_basis.as_ref(),
            &self.column_pool,
            &ctx,
        )?;
        Ok(self.commit(
            decision_inst,
            true_rates,
            result.solution,
            Rung::Full,
            None,
            basis,
            pool,
        ))
    }

    /// Executes one hour with the fault-tolerant anytime ladder (see the
    /// module docs): never gives an hour up while any rung can produce a
    /// [`validate_solution`]-clean decision.
    ///
    /// # Errors
    ///
    /// Only when every rung fails — which requires the instance itself to
    /// be unservable (e.g. a requester unreachable from every replica and
    /// the origin). As with [`OnlineSimulator::step`], a failed hour
    /// leaves the simulator untouched.
    pub fn step_anytime(
        &mut self,
        decision_inst: &Instance,
        true_rates: &[f64],
        cfg: &AnytimeConfig,
    ) -> Result<HourOutcome, JcrError> {
        let started = Instant::now();
        let hour = self.hour.to_string();
        let emit = |rung: Rung, status: &str, detail: &str| {
            if let Some(p) = &cfg.probe {
                p.event(
                    "rung",
                    &[
                        ("hour", hour.as_str()),
                        ("rung", rung.name()),
                        ("status", status),
                        ("detail", detail),
                    ],
                );
            }
        };
        let solver = self.hour_solver();
        let initial = self.initial_placement(decision_inst);
        let mut last_err = JcrError::Infeasible;

        // Rung 1: full re-solve under the hour budget, warm-started from
        // every piece of carried state.
        let ctx = rung_context(cfg, cfg.budget);
        self.offer_oracle(decision_inst, &ctx);
        let attempt = {
            let _s = ctx.span("online.rung.full");
            solver.solve_from_with_carry(
                decision_inst,
                initial.clone(),
                self.lp_basis.as_ref(),
                &self.column_pool,
                &ctx,
            )
        };
        let mut full_incumbent = None;
        let mut budget_tripped = false;
        match attempt {
            Ok((result, basis, pool)) => {
                if let Some((solution, repair)) = accept(decision_inst, result.solution) {
                    emit(Rung::Full, "served", polish_note(&repair));
                    return Ok(self.commit(
                        decision_inst,
                        true_rates,
                        solution,
                        Rung::Full,
                        repair,
                        basis,
                        pool,
                    ));
                }
                emit(Rung::Full, "failed", "candidate failed validation");
            }
            Err(e) => {
                emit(Rung::Full, "failed", &e.to_string());
                budget_tripped = matches!(e, JcrError::BudgetExceeded { .. });
                full_incumbent = e.clone().into_incumbent();
                last_err = e;
            }
        }

        // Rung 2: the full solve failed *with* carried state for a reason
        // other than the budget — suspect the carried state (a restored
        // snapshot component may be subtly poisoned despite validating)
        // and retry once completely cold. Skipped when there was nothing
        // carried (the solve was already cold) or the budget tripped (a
        // second full solve would waste what remains of the hour).
        if !budget_tripped && self.carrying_state() {
            let budget = remaining_budget(&cfg.budget, started.elapsed());
            let ctx = rung_context(cfg, budget);
            let attempt = {
                let _s = ctx.span("online.rung.cold-restore");
                solver.solve_from_with_carry(
                    decision_inst,
                    Placement::empty(decision_inst),
                    None,
                    &[],
                    &ctx,
                )
            };
            match attempt {
                Ok((result, basis, pool)) => {
                    if let Some((solution, repair)) = accept(decision_inst, result.solution) {
                        emit(Rung::ColdRestore, "served", polish_note(&repair));
                        return Ok(self.commit(
                            decision_inst,
                            true_rates,
                            solution,
                            Rung::ColdRestore,
                            repair,
                            basis,
                            pool,
                        ));
                    }
                    emit(Rung::ColdRestore, "failed", "candidate failed validation");
                }
                Err(e) => {
                    emit(Rung::ColdRestore, "failed", &e.to_string());
                    last_err = e;
                }
            }
        }

        // Rung 3: the interrupted full solve's validated incumbent.
        if let Some(incumbent) = full_incumbent {
            if let Some((solution, repair)) = accept(decision_inst, *incumbent) {
                emit(Rung::Incumbent, "served", polish_note(&repair));
                return Ok(self.commit(
                    decision_inst,
                    true_rates,
                    solution,
                    Rung::Incumbent,
                    repair,
                    None,
                    Vec::new(),
                ));
            }
            emit(Rung::Incumbent, "failed", "incumbent failed validation");
        } else if budget_tripped {
            emit(Rung::Incumbent, "failed", "no incumbent to fall back on");
        }

        // Rung 4: one retry with halved iteration caps, on what remains
        // of the hour budget.
        let mut halved = solver.clone();
        halved.max_iters = (halved.max_iters / 2).max(1);
        halved.rounding_draws = (halved.rounding_draws / 2).max(1);
        let budget = halve_caps(remaining_budget(&cfg.budget, started.elapsed()));
        let ctx = rung_context(cfg, budget);
        let attempt = {
            let _s = ctx.span("online.rung.retry-halved");
            halved.solve_from_with_carry(
                decision_inst,
                initial.clone(),
                self.lp_basis.as_ref(),
                &self.column_pool,
                &ctx,
            )
        };
        match attempt {
            Ok((result, basis, pool)) => {
                if let Some((solution, repair)) = accept(decision_inst, result.solution) {
                    emit(Rung::RetryHalved, "served", polish_note(&repair));
                    return Ok(self.commit(
                        decision_inst,
                        true_rates,
                        solution,
                        Rung::RetryHalved,
                        repair,
                        basis,
                        pool,
                    ));
                }
                emit(Rung::RetryHalved, "failed", "candidate failed validation");
            }
            Err(e) => {
                emit(Rung::RetryHalved, "failed", &e.to_string());
                if let Some(incumbent) = e.clone().into_incumbent() {
                    if let Some((solution, repair)) = accept(decision_inst, *incumbent) {
                        emit(Rung::RetryHalved, "served", "interrupted retry's incumbent");
                        return Ok(self.commit(
                            decision_inst,
                            true_rates,
                            solution,
                            Rung::RetryHalved,
                            repair,
                            None,
                            Vec::new(),
                        ));
                    }
                }
                last_err = e;
            }
        }

        // Rung 5: keep the carried placement, only re-route.
        let budget = remaining_budget(&cfg.budget, started.elapsed());
        let ctx = rung_context(cfg, budget);
        let attempt = {
            let _s = ctx.span("online.rung.routing-only");
            solver.route_given_placement_with_context(decision_inst, &initial, &ctx)
        };
        match attempt {
            Ok(routing) => {
                let candidate = Solution {
                    placement: initial.clone(),
                    routing,
                };
                if let Some((solution, repair)) = accept(decision_inst, candidate) {
                    emit(Rung::RoutingOnly, "served", polish_note(&repair));
                    return Ok(self.commit(
                        decision_inst,
                        true_rates,
                        solution,
                        Rung::RoutingOnly,
                        repair,
                        None,
                        Vec::new(),
                    ));
                }
                emit(Rung::RoutingOnly, "failed", "candidate failed validation");
            }
            Err(e) => {
                emit(Rung::RoutingOnly, "failed", &e.to_string());
                last_err = e;
            }
        }

        // Rung 6: carry the previous hour's solution, repaired against
        // the current instance. With no previous hour (or when its repair
        // fails), fall back to an origin-only solution. Repair is
        // budget-free by design: this rung must always produce an answer.
        let mut candidates: Vec<Solution> = Vec::new();
        if let Some(prev) = &self.previous {
            candidates.push(prev.clone());
        }
        if let Some(routing) =
            rnr::route_to_nearest_replica(decision_inst, &Placement::empty(decision_inst))
        {
            candidates.push(Solution {
                placement: Placement::empty(decision_inst),
                routing,
            });
        }
        for base in candidates {
            let (repaired, stats) = repair_solution(decision_inst, &base);
            if validate_solution(decision_inst, &repaired).is_empty() {
                emit(Rung::CarryForward, "served", "");
                return Ok(self.commit(
                    decision_inst,
                    true_rates,
                    repaired,
                    Rung::CarryForward,
                    Some(stats),
                    None,
                    Vec::new(),
                ));
            }
        }
        emit(Rung::CarryForward, "failed", "no repairable candidate");
        Err(last_err)
    }

    /// The solution carried into the next hour, if any step succeeded.
    pub fn current_solution(&self) -> Option<&Solution> {
        self.previous.as_ref()
    }

    /// The placement carried into the next hour, if any step succeeded.
    pub fn current_placement(&self) -> Option<&Placement> {
        self.previous.as_ref().map(|s| &s.placement)
    }

    /// Captures the carried state as a [`SolverState`] snapshot. Taken at
    /// an hour boundary (after a step returned), restoring it resumes the
    /// run bit-identically: everything that can change the bits of future
    /// decisions is included, and the speed-only carried oracle rows —
    /// which are bit-identical to freshly computed ones — are not.
    pub fn snapshot(&self) -> SolverState {
        let (n_nodes, n_items, n_edges, n_requests) = self.dims.unwrap_or_default();
        let placement = self
            .previous
            .as_ref()
            .map(|s| &s.placement)
            .or(self.seed_placement.as_ref())
            .map(|p| p.to_raw_parts().1.to_vec());
        let routing = self.previous.as_ref().map(|s| {
            s.routing
                .per_request
                .iter()
                .map(|flows| {
                    flows
                        .iter()
                        .map(|pf| FlowRecord {
                            amount_bits: pf.amount.to_bits(),
                            edges: pf.path.edges().iter().map(|e| e.index() as u32).collect(),
                        })
                        .collect()
                })
                .collect()
        });
        SolverState {
            hour: self.hour as u64,
            n_nodes,
            n_items,
            n_edges,
            n_requests,
            placement,
            routing,
            basis: self.lp_basis.as_ref().map(jcr_lp::Basis::to_bytes),
            columns: self
                .column_pool
                .iter()
                .map(|(k, nodes)| ColumnRecord {
                    commodity: *k as u32,
                    nodes: nodes.iter().map(|v| v.index() as u32).collect(),
                })
                .collect(),
        }
    }

    /// Rebuilds a simulator from a decoded snapshot, independently
    /// validating every component and degrading whatever fails to cold
    /// (see [`RestoreReport`]); restore itself never errors. The deeper
    /// semantic checks run where the context to perform them exists: the
    /// LP re-factorizes the basis on first use and falls back cold if it
    /// is singular or mis-shaped, carried columns are re-priced against
    /// each hour's auxiliary graph and stale ones dropped, and carried
    /// oracle rows are delta-checked and sample-verified per hour.
    pub fn restore(solver: Alternating, state: &SolverState) -> (OnlineSimulator, RestoreReport) {
        let mut sim = OnlineSimulator::new(solver);
        sim.hour = state.hour as usize;
        if state.n_nodes > 0 {
            sim.dims = Some((
                state.n_nodes,
                state.n_items,
                state.n_edges,
                state.n_requests,
            ));
        }
        let mut report = RestoreReport {
            placement: ComponentStatus::Absent,
            routing: ComponentStatus::Absent,
            basis: ComponentStatus::Absent,
            columns: ComponentStatus::Absent,
        };

        let placement = state.placement.as_deref().and_then(|words| {
            let decoded =
                Placement::from_raw_parts(state.n_nodes as usize, state.n_items as usize, words);
            report.placement = match decoded {
                Some(_) => ComponentStatus::Restored,
                None => ComponentStatus::Degraded("placement words do not fit the dimensions"),
            };
            decoded
        });
        let routing = state.routing.as_ref().and_then(|per_request| {
            let decoded = decode_routing(per_request, state.n_requests, state.n_edges);
            report.routing = match decoded {
                Some(_) => ComponentStatus::Restored,
                None => ComponentStatus::Degraded("routing references out-of-range edges"),
            };
            decoded
        });
        match (placement, routing) {
            (Some(p), Some(r)) => {
                sim.previous = Some(Solution {
                    placement: p,
                    routing: r,
                });
            }
            (Some(p), None) => sim.seed_placement = Some(p),
            (None, Some(_)) => {
                // A routing without its placement cannot be served or
                // repaired; degrade it alongside.
                report.routing = ComponentStatus::Degraded("placement unavailable");
            }
            (None, None) => {}
        }

        sim.lp_basis = state.basis.as_deref().and_then(|bytes| {
            let decoded = jcr_lp::Basis::from_bytes(bytes);
            report.basis = match decoded {
                Some(_) => ComponentStatus::Restored,
                None => ComponentStatus::Degraded("basis bytes malformed"),
            };
            decoded
        });

        if !state.columns.is_empty() {
            let max_node = state.n_nodes as usize + state.n_items as usize;
            let mut dropped = false;
            for col in &state.columns {
                let in_range = (col.commodity as usize) < state.n_requests as usize
                    && col.nodes.len() >= 2
                    && col.nodes.iter().all(|&v| (v as usize) < max_node);
                if in_range {
                    sim.column_pool.push((
                        col.commodity as usize,
                        col.nodes.iter().map(|&v| NodeId::new(v as usize)).collect(),
                    ));
                } else {
                    dropped = true;
                }
            }
            report.columns = if dropped {
                ComponentStatus::Degraded("column references out-of-range nodes")
            } else {
                ComponentStatus::Restored
            };
        }

        (sim, report)
    }

    /// The hour's solver: the configured one with the seed perturbed by
    /// the hour index, so every hour makes fresh randomized-rounding
    /// draws. Pure in `self` — a failed hour repeats identically.
    fn hour_solver(&self) -> Alternating {
        let mut solver = self.solver.clone();
        solver.seed = self.solver.seed.wrapping_add(self.hour as u64);
        solver
    }

    /// The warm-start placement for the current hour: the carried
    /// placement when enabled, dimension-compatible, and feasible. A
    /// snapshot-restored placement whose routing was degraded
    /// (`seed_placement`) fills in when no full previous solution exists.
    fn initial_placement(&self, decision_inst: &Instance) -> Placement {
        if !self.warm_start {
            return Placement::empty(decision_inst);
        }
        self.previous
            .as_ref()
            .map(|s| &s.placement)
            .or(self.seed_placement.as_ref())
            .filter(|p| p.dims_match(decision_inst) && p.is_feasible(decision_inst))
            .cloned()
            .unwrap_or_else(|| Placement::empty(decision_inst))
    }

    /// Whether any carried component would warm-start the next solve —
    /// the precondition for attempting [`Rung::ColdRestore`].
    fn carrying_state(&self) -> bool {
        self.previous.is_some()
            || self.seed_placement.is_some()
            || self.lp_basis.is_some()
            || !self.column_pool.is_empty()
    }

    /// Offers the previous hour's oracle rows to this hour's instance
    /// (delta invalidation + sampled re-verification; see
    /// [`Instance::adopt_all_pairs_from`]). Speed-only: adopted rows are
    /// bit-identical to fresh ones. No-op when nothing is carried or the
    /// instance already computed its all-pairs cache.
    fn offer_oracle(&self, decision_inst: &Instance, ctx: &SolverContext) {
        if let Some(oracle) = &self.prev_oracle {
            decision_inst.adopt_all_pairs_from(oracle, ctx);
        }
    }

    /// Commits a served hour: computes the outcome metrics and only then
    /// advances the carried state. All mutation of `self` funnels through
    /// here, so failure paths cannot leave the simulator inconsistent.
    /// `lp_basis` replaces the carried LP basis when the serving rung
    /// produced one; rungs that solved no placement LP pass `None` and
    /// keep the last good basis (still restorable next hour). `pool` is
    /// the hour's active CG columns (empty for rungs that ran no column
    /// generation — the next hour then starts unseeded, which is exactly
    /// what an uninterrupted run would do after the same rung).
    #[allow(clippy::too_many_arguments)]
    fn commit(
        &mut self,
        decision_inst: &Instance,
        true_rates: &[f64],
        solution: Solution,
        rung: Rung,
        repair: Option<RepairStats>,
        lp_basis: Option<jcr_lp::Basis>,
        pool: Vec<CarriedColumn>,
    ) -> HourOutcome {
        let decided_cost = solution.cost(decision_inst);
        let (realized_cost, realized_congestion) =
            solution.evaluate_under(decision_inst, true_rates);
        let placement_churn = match &self.previous {
            Some(prev) if prev.placement.dims_match(decision_inst) => {
                churn(&prev.placement, &solution.placement, decision_inst)
            }
            _ => solution.placement.len(),
        };
        let certificate = crate::certify::certify_solution(decision_inst, &solution, false);
        if lp_basis.is_some() {
            self.lp_basis = lp_basis;
        }
        self.column_pool = pool;
        if let Some(oracle) = decision_inst.cloned_oracle() {
            self.prev_oracle = Some(oracle);
        }
        self.seed_placement = None;
        self.dims = Some((
            decision_inst.graph.node_count() as u32,
            decision_inst.num_items() as u32,
            decision_inst.graph.edge_count() as u32,
            decision_inst.requests.len() as u32,
        ));
        self.previous = Some(solution.clone());
        self.hour += 1;
        HourOutcome {
            decided_cost,
            realized_cost,
            realized_congestion,
            placement_churn,
            rung,
            repair,
            certificate,
            solution,
        }
    }
}

/// Decodes a snapshot's routing section into a [`Routing`], or `None`
/// when any record is out of range for the snapshot's own dimensions
/// (wrong request count, edge index ≥ `n_edges`, non-finite or negative
/// flow amount).
fn decode_routing(
    per_request: &[Vec<FlowRecord>],
    n_requests: u32,
    n_edges: u32,
) -> Option<Routing> {
    if per_request.len() != n_requests as usize {
        return None;
    }
    let mut out = Vec::with_capacity(per_request.len());
    for flows in per_request {
        let mut decoded = Vec::with_capacity(flows.len());
        for flow in flows {
            let amount = f64::from_bits(flow.amount_bits);
            if !amount.is_finite() || amount < 0.0 {
                return None;
            }
            if flow.edges.iter().any(|&e| e >= n_edges) {
                return None;
            }
            decoded.push(jcr_flow::PathFlow {
                path: Path::new(
                    flow.edges
                        .iter()
                        .map(|&e| EdgeId::new(e as usize))
                        .collect(),
                ),
                amount,
            });
        }
        out.push(decoded);
    }
    Some(Routing { per_request: out })
}

/// Accepts a rung's candidate if it validates, polishing it with one
/// repair pass when it does not (the alternating solver's randomized
/// rounding is bicriteria, so a legitimate solve can overload links
/// slightly). `None` when even the repaired candidate fails validation.
fn accept(inst: &Instance, solution: Solution) -> Option<(Solution, Option<RepairStats>)> {
    if validate_solution(inst, &solution).is_empty() {
        return Some((solution, None));
    }
    let (repaired, stats) = repair_solution(inst, &solution);
    if validate_solution(inst, &repaired).is_empty() {
        return Some((repaired, Some(stats)));
    }
    None
}

/// Probe detail string for an accepted candidate.
fn polish_note(repair: &Option<RepairStats>) -> &'static str {
    if repair.is_some() {
        "after repair polish"
    } else {
        ""
    }
}

/// A context for one ladder rung, mirroring into the configured probe.
fn rung_context(cfg: &AnytimeConfig, budget: Budget) -> SolverContext {
    let ctx = SolverContext::with_budget(budget);
    match &cfg.probe {
        Some(p) => ctx.with_probe(Box::new(Rc::clone(p))),
        None => ctx,
    }
}

/// `budget` with its deadline shrunk by the time already spent (phase
/// caps are kept — they are per-context and reset with each rung).
fn remaining_budget(budget: &Budget, elapsed: Duration) -> Budget {
    match budget.deadline_limit() {
        Some(limit) => budget.with_deadline(limit.saturating_sub(elapsed)),
        None => *budget,
    }
}

/// `budget` with every phase iteration cap halved (minimum 1).
fn halve_caps(budget: Budget) -> Budget {
    let mut out = budget;
    for phase in Phase::ALL {
        if let Some(cap) = budget.phase_cap(phase) {
            out = out.with_phase_cap(phase, (cap / 2).max(1));
        }
    }
    out
}

/// Symmetric-difference size between two placements.
fn churn(a: &Placement, b: &Placement, inst: &Instance) -> usize {
    let mut changes = 0;
    for v in inst.graph.nodes() {
        for i in 0..inst.num_items() {
            if a.has(v, i) != b.has(v, i) {
                changes += 1;
            }
        }
    }
    changes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use jcr_topo::{Topology, TopologyKind};

    fn hourly_instance(scale: f64, seed: u64) -> Instance {
        let topo = Topology::generate(TopologyKind::Abovenet, 5).unwrap();
        let n_edges = topo.edge_nodes.len();
        // Deterministic demand matrix scaled per hour.
        let rates: Vec<Vec<f64>> = (0..6)
            .map(|i| {
                (0..n_edges)
                    .map(|k| scale * (1.0 + ((i * 7 + k * 3 + seed as usize) % 5) as f64))
                    .collect()
            })
            .collect();
        InstanceBuilder::new(topo)
            .items(6)
            .cache_capacity(2.0)
            .demand_matrix(rates)
            .link_capacity_fraction(0.05)
            .build()
            .unwrap()
    }

    /// The same instance with every link capacity zeroed: nothing can be
    /// routed, so any solve fails with [`JcrError::Infeasible`].
    fn unroutable(inst: &Instance) -> Instance {
        Instance::new(
            inst.graph.clone(),
            inst.link_cost.clone(),
            vec![0.0; inst.graph.edge_count()],
            inst.cache_cap.clone(),
            inst.item_size.clone(),
            inst.requests.clone(),
            inst.origin,
        )
        .unwrap()
    }

    #[test]
    fn steps_accumulate_and_report() {
        let mut sim = OnlineSimulator::new(Alternating::new());
        for hour in 0..3 {
            let decision = hourly_instance(100.0 + 10.0 * hour as f64, hour);
            let truth: Vec<f64> = decision.requests.iter().map(|r| r.rate * 1.1).collect();
            let outcome = sim.step(&decision, &truth).unwrap();
            assert!(outcome.decided_cost > 0.0);
            // Truth is a uniform 1.1× scaling of the decision demand.
            assert!(
                (outcome.realized_cost - 1.1 * outcome.decided_cost).abs()
                    < 1e-6 * outcome.decided_cost
            );
            assert!(outcome.solution.placement.is_feasible(&decision));
            assert_eq!(outcome.rung, Rung::Full);
        }
        assert_eq!(sim.hour(), 3);
        assert!(sim.current_placement().is_some());
    }

    #[test]
    fn warm_start_reduces_churn_on_stable_demand() {
        // Identical demand every hour: after the first hour the placement
        // should stabilize (zero or near-zero churn) with warm starts.
        let mut sim = OnlineSimulator::new(Alternating::new());
        let decision = hourly_instance(100.0, 1);
        let truth: Vec<f64> = decision.requests.iter().map(|r| r.rate).collect();
        let first = sim.step(&decision, &truth).unwrap();
        assert!(first.placement_churn > 0, "first hour fills the caches");
        let second = sim.step(&decision, &truth).unwrap();
        assert!(
            second.placement_churn <= first.placement_churn,
            "stable demand must not increase churn"
        );
        // The realized cost must not degrade from warm starting.
        assert!(second.realized_cost <= first.realized_cost + 1e-6);
    }

    #[test]
    fn cold_start_still_works() {
        let mut sim = OnlineSimulator::new(Alternating::new());
        sim.warm_start = false;
        let decision = hourly_instance(100.0, 2);
        let truth: Vec<f64> = decision.requests.iter().map(|r| r.rate).collect();
        let a = sim.step(&decision, &truth).unwrap();
        let b = sim.step(&decision, &truth).unwrap();
        assert!(a.realized_cost > 0.0 && b.realized_cost > 0.0);
    }

    #[test]
    fn failed_hour_leaves_state_untouched_and_retries_bit_identically() {
        let good0 = hourly_instance(100.0, 3);
        let good1 = hourly_instance(120.0, 4);
        let truth0: Vec<f64> = good0.requests.iter().map(|r| r.rate).collect();
        let truth1: Vec<f64> = good1.requests.iter().map(|r| r.rate).collect();
        let bad = unroutable(&good1);

        // Simulator A fails hour 1 once, then retries it.
        let mut a = OnlineSimulator::new(Alternating::new());
        let a0 = a.step(&good0, &truth0).unwrap();
        let before = (a.hour(), a.current_solution().cloned());
        a.step(&bad, &truth1).expect_err("unroutable instance");
        assert_eq!(a.hour(), before.0, "failed hour advanced the clock");
        assert_eq!(
            a.current_solution().cloned(),
            before.1,
            "failed hour mutated the carried solution"
        );
        let a1 = a.step(&good1, &truth1).unwrap();

        // Simulator B never sees the failure.
        let mut b = OnlineSimulator::new(Alternating::new());
        let b0 = b.step(&good0, &truth0).unwrap();
        let b1 = b.step(&good1, &truth1).unwrap();

        assert_eq!(a0.solution, b0.solution);
        assert_eq!(
            a1.solution, b1.solution,
            "retried hour is not bit-identical to the unfailed one"
        );
        assert_eq!(a1.decided_cost.to_bits(), b1.decided_cost.to_bits());
        assert_eq!(a1.placement_churn, b1.placement_churn);
    }

    #[test]
    fn step_anytime_matches_step_when_unconstrained() {
        let decision = hourly_instance(100.0, 6);
        let truth: Vec<f64> = decision.requests.iter().map(|r| r.rate).collect();
        let mut plain = OnlineSimulator::new(Alternating::new());
        let mut anytime = OnlineSimulator::new(Alternating::new());
        let p = plain.step(&decision, &truth).unwrap();
        let q = anytime
            .step_anytime(&decision, &truth, &AnytimeConfig::new())
            .unwrap();
        assert_eq!(q.rung, Rung::Full);
        assert!(validate_solution(&decision, &q.solution).is_empty());
        // The anytime path only diverges from the plain one when the
        // bicriteria rounding needed a repair polish to validate.
        if validate_solution(&decision, &p.solution).is_empty() {
            assert!(q.repair.is_none());
            assert_eq!(p.solution, q.solution);
            assert_eq!(p.decided_cost.to_bits(), q.decided_cost.to_bits());
        } else {
            assert!(q.repair.is_some());
        }
    }

    #[test]
    fn zero_deadline_carries_forward_and_repairs() {
        let decision = hourly_instance(100.0, 7);
        let truth: Vec<f64> = decision.requests.iter().map(|r| r.rate).collect();
        let mut sim = OnlineSimulator::new(Alternating::new());
        // No previous hour: the ladder bottoms out at a repaired
        // origin-only solution.
        let cfg = AnytimeConfig::new().with_budget(Budget::deadline(Duration::ZERO));
        let outcome = sim.step_anytime(&decision, &truth, &cfg).unwrap();
        assert_eq!(outcome.rung, Rung::CarryForward);
        assert!(outcome.repair.is_some());
        assert!(validate_solution(&decision, &outcome.solution).is_empty());
        assert_eq!(sim.hour(), 1);

        // With a previous hour, the carried solution is repaired instead.
        let mut warm = OnlineSimulator::new(Alternating::new());
        warm.step(&decision, &truth).unwrap();
        let outcome = warm.step_anytime(&decision, &truth, &cfg).unwrap();
        assert_eq!(outcome.rung, Rung::CarryForward);
        assert!(validate_solution(&decision, &outcome.solution).is_empty());
    }

    #[test]
    fn ladder_metadata_is_consistent() {
        assert_eq!(Rung::ALL.len(), 6);
        for (i, rung) in Rung::ALL.iter().enumerate() {
            assert_eq!(rung.index(), i);
            assert!(!rung.name().is_empty());
        }
        assert_eq!(Rung::ColdRestore.name(), "cold-restore");
    }

    #[test]
    fn snapshot_resumes_bit_identically_through_the_wire_format() {
        // Run three hours, snapshotting after hour 2; a simulator
        // restored from the serialized snapshot must replay hour 3
        // bit-for-bit, including across fault-like demand changes.
        let hours: Vec<Instance> = (0..4)
            .map(|h| hourly_instance(100.0 + 15.0 * h as f64, h))
            .collect();
        let truths: Vec<Vec<f64>> = hours
            .iter()
            .map(|inst| inst.requests.iter().map(|r| r.rate * 1.05).collect())
            .collect();

        let mut uninterrupted = OnlineSimulator::new(Alternating::new());
        let mut killed = OnlineSimulator::new(Alternating::new());
        for h in 0..2 {
            uninterrupted.step(&hours[h], &truths[h]).unwrap();
            killed.step(&hours[h], &truths[h]).unwrap();
        }
        let bytes = killed.snapshot().to_bytes();
        drop(killed); // the "crash"

        let state = SolverState::from_bytes(&bytes).unwrap();
        let (mut resumed, report) = OnlineSimulator::restore(Alternating::new(), &state);
        assert!(report.placement.restored());
        assert!(report.routing.restored());
        assert_eq!(resumed.hour(), 2);
        assert_eq!(
            resumed.current_solution(),
            uninterrupted.current_solution(),
            "restored carried solution differs"
        );

        for h in 2..4 {
            let a = uninterrupted.step(&hours[h], &truths[h]).unwrap();
            let b = resumed.step(&hours[h], &truths[h]).unwrap();
            assert_eq!(a.solution, b.solution, "hour {h} diverged after resume");
            assert_eq!(a.decided_cost.to_bits(), b.decided_cost.to_bits());
            assert_eq!(a.realized_cost.to_bits(), b.realized_cost.to_bits());
            assert_eq!(a.placement_churn, b.placement_churn);
            assert_eq!(a.rung, b.rung);
        }
    }

    #[test]
    fn restore_degrades_corrupt_components_independently() {
        let decision = hourly_instance(100.0, 11);
        let truth: Vec<f64> = decision.requests.iter().map(|r| r.rate).collect();
        let mut sim = OnlineSimulator::new(Alternating::new());
        sim.step(&decision, &truth).unwrap();
        let good = sim.snapshot();

        // Placement words that do not fit the dimensions.
        let mut state = good.clone();
        state.placement.as_mut().unwrap().pop();
        let (restored, report) = OnlineSimulator::restore(Alternating::new(), &state);
        assert!(matches!(report.placement, ComponentStatus::Degraded(_)));
        // Without a placement, the routing degrades alongside.
        assert!(matches!(report.routing, ComponentStatus::Degraded(_)));
        assert!(restored.current_solution().is_none());

        // Routing referencing an out-of-range edge: the placement still
        // restores (as a warm-start seed), the solution does not.
        let mut state = good.clone();
        state.routing.as_mut().unwrap()[0].push(FlowRecord {
            amount_bits: 1.0f64.to_bits(),
            edges: vec![state.n_edges + 7],
        });
        let (restored, report) = OnlineSimulator::restore(Alternating::new(), &state);
        assert!(report.placement.restored());
        assert!(matches!(report.routing, ComponentStatus::Degraded(_)));
        assert!(restored.current_solution().is_none());
        assert!(restored.seed_placement.is_some());

        // Garbage basis bytes.
        let mut state = good.clone();
        state.basis = Some(vec![0xFF; 5]);
        let (restored, report) = OnlineSimulator::restore(Alternating::new(), &state);
        assert!(matches!(report.basis, ComponentStatus::Degraded(_)));
        assert!(restored.lp_basis.is_none());

        // A column referencing a node beyond the auxiliary graph.
        let mut state = good.clone();
        state.columns.push(crate::state::ColumnRecord {
            commodity: 0,
            nodes: vec![0, state.n_nodes + state.n_items + 9],
        });
        let (restored, report) = OnlineSimulator::restore(Alternating::new(), &state);
        assert!(matches!(report.columns, ComponentStatus::Degraded(_)));

        // Every degraded restore must still serve the next hour (via the
        // anytime ladder, which repair-polishes bicriteria overloads).
        let mut degraded = restored;
        let outcome = degraded
            .step_anytime(&decision, &truth, &AnytimeConfig::new())
            .unwrap();
        assert!(validate_solution(&decision, &outcome.solution).is_empty());
    }

    #[test]
    fn fresh_simulator_snapshot_is_empty_but_loadable() {
        let sim = OnlineSimulator::new(Alternating::new());
        let state = sim.snapshot();
        assert_eq!(state.hour, 0);
        assert!(state.placement.is_none());
        let bytes = state.to_bytes();
        let back = SolverState::from_bytes(&bytes).unwrap();
        let (restored, report) = OnlineSimulator::restore(Alternating::new(), &back);
        assert_eq!(restored.hour(), 0);
        assert_eq!(report.placement, ComponentStatus::Absent);
        assert_eq!(report.basis, ComponentStatus::Absent);
        assert_eq!(report.columns, ComponentStatus::Absent);
    }

    #[test]
    fn unservable_instance_still_errors() {
        // Acceptance criterion scoping: the ladder only guarantees
        // service for servable instances. All-zero link capacities defeat
        // every rung — including repair — and must surface an error, not
        // a bogus outcome.
        let decision = hourly_instance(100.0, 8);
        let truth: Vec<f64> = decision.requests.iter().map(|r| r.rate).collect();
        let bad = unroutable(&decision);
        let mut sim = OnlineSimulator::new(Alternating::new());
        let err = sim.step_anytime(&bad, &truth, &AnytimeConfig::new());
        assert!(err.is_err(), "{err:?}");
        assert_eq!(sim.hour(), 0);
    }
}
