//! The binary-cache-capacity case (§4.2): a given subset of nodes stores
//! the entire catalog, the rest store nothing, and the joint source
//! selection + integral routing problem reduces to MSUFP on the auxiliary
//! graph of Lemma 4.5, solved by the paper's Algorithm 2.

use jcr_flow::msufp::{self, Demand};
use jcr_graph::NodeId;

use crate::auxiliary::AuxiliaryGraph;
use crate::error::JcrError;
use crate::instance::Instance;
use crate::placement::Placement;
use crate::routing::{Routing, Solution};

/// Result of the binary-cache pipeline.
#[derive(Clone, Debug)]
pub struct BinaryCacheSolution {
    /// The (fixed) full-catalog placement at the storers.
    pub solution: Solution,
    /// Cost of the optimal splittable flow — a lower bound on the optimal
    /// integral cost within capacities ("splittable flow" in Fig. 6).
    pub splittable_cost: f64,
}

/// Builds the full-catalog placement at `storers` (`c_v = |C|` for
/// `v ∈ V_s`, 0 elsewhere).
pub fn binary_placement(inst: &Instance, storers: &[NodeId]) -> Placement {
    let mut p = Placement::empty(inst);
    for &v in storers {
        for i in 0..inst.num_items() {
            p.set(v, i, true);
        }
    }
    p
}

/// Solves the binary-cache-capacity case with Algorithm 2 using `k`
/// demand-rounding classes (`k = 2` recovers the state-of-the-art MSUFP
/// algorithm of \[33\]; larger `k` trades a little demand-rounding error for
/// much less congestion — Theorem 4.7).
///
/// # Errors
///
/// [`JcrError::Infeasible`] if even splittable routing cannot satisfy the
/// demands within the link capacities.
pub fn solve_binary_caches(
    inst: &Instance,
    storers: &[NodeId],
    k: u32,
) -> Result<BinaryCacheSolution, JcrError> {
    solve_binary_caches_with_context(inst, storers, k, &jcr_ctx::SolverContext::new())
}

/// [`solve_binary_caches`] under an explicit [`jcr_ctx::SolverContext`]:
/// the splittable min-cost flow obeys the context's `MinCostFlow` budget
/// and the decomposition feeds the path counter.
///
/// # Errors
///
/// Same as [`solve_binary_caches`], plus [`JcrError::BudgetExceeded`]
/// when a budget trips.
pub fn solve_binary_caches_with_context(
    inst: &Instance,
    storers: &[NodeId],
    k: u32,
    ctx: &jcr_ctx::SolverContext,
) -> Result<BinaryCacheSolution, JcrError> {
    let aux = AuxiliaryGraph::single_source(inst, storers);
    let vs = aux.item_source[0];
    let demands: Vec<Demand> = inst
        .requests
        .iter()
        .map(|r| Demand {
            dest: r.node,
            demand: r.rate,
        })
        .collect();
    let msufp =
        msufp::solve_msufp_with_context(&aux.graph, &aux.cost, &aux.cap, vs, &demands, k, ctx)?;
    let paths = msufp
        .paths
        .iter()
        .map(|p| aux.strip_virtual(p))
        .collect::<Vec<_>>();
    let placement = binary_placement(inst, storers);
    let routing = Routing::from_paths(inst, paths);
    debug_assert!(routing.sources_valid(inst, &placement));
    Ok(BinaryCacheSolution {
        solution: Solution { placement, routing },
        splittable_cost: msufp.splittable_cost,
    })
}

/// The RNR baseline in the binary-cache case (\[3\]'s routing): every
/// request goes to its nearest replica regardless of link capacities.
///
/// # Errors
///
/// [`JcrError::Infeasible`] if a request cannot reach any replica.
pub fn rnr_binary(inst: &Instance, storers: &[NodeId]) -> Result<Solution, JcrError> {
    let placement = binary_placement(inst, storers);
    let routing =
        crate::rnr::route_to_nearest_replica(inst, &placement).ok_or(JcrError::Infeasible)?;
    Ok(Solution { placement, routing })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use jcr_topo::{Topology, TopologyKind};

    fn capped_inst(fraction: f64) -> Instance {
        InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, 12).unwrap())
            .items(5)
            .cache_capacity(5.0)
            .zipf_demand(0.8, 1000.0, 9)
            .link_capacity_fraction(fraction)
            .build()
            .unwrap()
    }

    #[test]
    fn solves_and_serves_all() {
        let inst = capped_inst(0.05);
        let storer = inst.cache_nodes()[0];
        let sol = solve_binary_caches(&inst, &[storer], 4).unwrap();
        assert!(sol.solution.routing.serves_all(&inst));
        assert!(sol.solution.routing.is_integral());
        // Theorem 4.7(i): never above the optimal cost, which is lower
        // bounded by the splittable cost... the unsplittable cost can be
        // *below* the splittable optimum only because rounded-down demands
        // were used for path selection; with original demands routed, cost
        // can exceed splittable_cost but stays within the theorem's bound
        // of the optimum. Sanity: it is at least positive and finite.
        assert!(sol.solution.cost(&inst) > 0.0);
        assert!(sol.splittable_cost > 0.0);
    }

    #[test]
    fn theorem_cost_bound_holds() {
        // Theorem 4.7(i): Σ λ_i w(p_i) ≤ minimum cost of any flow
        // satisfying the demands (= splittable optimum) — the theorem
        // actually guarantees ≤ the *unsplittable* optimum; the splittable
        // optimum lower-bounds that, so we check the weaker direction the
        // paper plots in Fig. 6: cost stays within a small factor of the
        // splittable bound.
        let inst = capped_inst(0.05);
        let storer = inst.cache_nodes()[1];
        for k in [1u32, 2, 8] {
            let sol = solve_binary_caches(&inst, &[storer], k).unwrap();
            assert!(
                sol.solution.cost(&inst) <= sol.splittable_cost * 1.01 + 1e-6,
                "K={k}: {} vs splittable {}",
                sol.solution.cost(&inst),
                sol.splittable_cost
            );
        }
    }

    #[test]
    fn theorem_congestion_bound_holds() {
        // Theorem 4.7(ii): every link load stays below
        // 2^{1/K}·c_e + 2^{1/K}/(2(2^{1/K}−1))·λ_max. (Pointwise
        // monotonicity of congestion in K is NOT guaranteed — only this
        // bound tightens as K grows.)
        let inst = capped_inst(0.02);
        let storer = inst.cache_nodes()[0];
        let lambda_max = inst.requests.iter().map(|r| r.rate).fold(0.0, f64::max);
        for k in [1u32, 2, 8, 64] {
            let sol = solve_binary_caches(&inst, &[storer], k).unwrap();
            let factor = 2f64.powf(1.0 / k as f64);
            let additive = factor / (2.0 * (factor - 1.0)) * lambda_max;
            let loads = sol.solution.routing.link_loads(&inst);
            for (e, (&load, &cap)) in loads.iter().zip(&inst.link_cap).enumerate() {
                assert!(
                    load <= factor * cap + additive + 1e-9,
                    "K={k}, link {e}: load {load} vs bound {}",
                    factor * cap + additive
                );
            }
        }
    }

    #[test]
    fn rnr_ignores_capacities() {
        let inst = capped_inst(0.01);
        let storer = inst.cache_nodes()[0];
        let rnr = rnr_binary(&inst, &[storer]).unwrap();
        let alg2 = solve_binary_caches(&inst, &[storer], 8).unwrap();
        // RNR is (weakly) cheaper but (weakly) more congested.
        assert!(rnr.cost(&inst) <= alg2.solution.cost(&inst) + 1e-6);
        assert!(rnr.congestion(&inst) + 1e-9 >= alg2.solution.congestion(&inst));
    }
}
