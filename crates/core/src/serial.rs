//! Plain-text (de)serialization of instances, so that exact experiment
//! inputs can be archived and replayed without any serde dependency.
//!
//! Format (one record per line, `#` comments allowed):
//!
//! ```text
//! jcr-instance v1
//! nodes <count>
//! origin <node index>            # optional
//! item <size>                    # one per item, in item-id order
//! cache <node> <capacity>        # nodes with positive cache capacity
//! link <u> <v> <cost> <capacity> # capacity "inf" for uncapacitated
//! request <item> <node> <rate>
//! ```

use jcr_graph::{DiGraph, NodeId};

use crate::error::JcrError;
use crate::instance::{Instance, Request};

/// Serializes an instance to the plain-text format.
pub fn to_text(inst: &Instance) -> String {
    use std::fmt::Write;
    let mut out = String::from("jcr-instance v1\n");
    writeln!(out, "nodes {}", inst.graph.node_count()).expect("write to string");
    if let Some(o) = inst.origin {
        writeln!(out, "origin {}", o.index()).expect("write to string");
    }
    for size in &inst.item_size {
        writeln!(out, "item {size}").expect("write to string");
    }
    for v in inst.graph.nodes() {
        if inst.cache_cap[v.index()] > 0.0 {
            writeln!(out, "cache {} {}", v.index(), inst.cache_cap[v.index()])
                .expect("write to string");
        }
    }
    for e in inst.graph.edges() {
        let (u, v) = inst.graph.endpoints(e);
        let cap = inst.link_cap[e.index()];
        let cap_str = if cap.is_finite() {
            format!("{cap}")
        } else {
            "inf".to_string()
        };
        writeln!(
            out,
            "link {} {} {} {cap_str}",
            u.index(),
            v.index(),
            inst.link_cost[e.index()]
        )
        .expect("write to string");
    }
    for r in &inst.requests {
        writeln!(out, "request {} {} {}", r.item, r.node.index(), r.rate).expect("write to string");
    }
    out
}

/// Parses an instance from the plain-text format.
///
/// Link order (and hence edge indices) is preserved, so routing results
/// recorded against the original instance stay meaningful.
///
/// # Errors
///
/// [`JcrError::InvalidInstance`] on malformed or inconsistent input.
pub fn from_text(text: &str) -> Result<Instance, JcrError> {
    let bad =
        |line: usize, msg: &str| JcrError::InvalidInstance(format!("line {}: {msg}", line + 1));
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i, l.split('#').next().unwrap_or("").trim()))
        .filter(|(_, l)| !l.is_empty());
    let (first_no, first) = lines
        .next()
        .ok_or_else(|| JcrError::InvalidInstance("empty input".into()))?;
    if first != "jcr-instance v1" {
        return Err(bad(first_no, "expected header `jcr-instance v1`"));
    }

    let mut n_nodes: Option<usize> = None;
    let mut origin: Option<usize> = None;
    let mut item_size: Vec<f64> = Vec::new();
    let mut caches: Vec<(usize, f64)> = Vec::new();
    let mut links: Vec<(usize, usize, f64, f64)> = Vec::new();
    let mut requests_raw: Vec<(usize, usize, f64)> = Vec::new();

    for (lineno, line) in lines {
        let mut parts = line.split_whitespace();
        let keyword = parts.next().expect("non-empty");
        let mut num = |what: &str| -> Result<f64, JcrError> {
            let tok = parts
                .next()
                .ok_or_else(|| bad(lineno, &format!("missing {what}")))?;
            if tok == "inf" {
                return Ok(f64::INFINITY);
            }
            tok.parse()
                .map_err(|_| bad(lineno, &format!("bad {what}: {tok:?}")))
        };
        match keyword {
            "nodes" => n_nodes = Some(num("node count")? as usize),
            "origin" => origin = Some(num("origin index")? as usize),
            "item" => item_size.push(num("item size")?),
            "cache" => {
                let v = num("node")? as usize;
                let cap = num("capacity")?;
                caches.push((v, cap));
            }
            "link" => {
                let u = num("u")? as usize;
                let v = num("v")? as usize;
                let cost = num("cost")?;
                let cap = num("capacity")?;
                links.push((u, v, cost, cap));
            }
            "request" => {
                let item = num("item")? as usize;
                let node = num("node")? as usize;
                let rate = num("rate")?;
                requests_raw.push((item, node, rate));
            }
            other => return Err(bad(lineno, &format!("unknown keyword {other:?}"))),
        }
    }

    let n = n_nodes.ok_or_else(|| JcrError::InvalidInstance("missing `nodes`".into()))?;
    let mut graph = DiGraph::with_capacity(n, links.len());
    let nodes = graph.add_nodes(n);
    let in_range = |v: usize| -> Result<NodeId, JcrError> {
        nodes
            .get(v)
            .copied()
            .ok_or_else(|| JcrError::InvalidInstance(format!("node {v} out of range")))
    };
    let mut link_cost = Vec::with_capacity(links.len());
    let mut link_cap = Vec::with_capacity(links.len());
    for (u, v, cost, cap) in links {
        graph.add_edge(in_range(u)?, in_range(v)?);
        link_cost.push(cost);
        link_cap.push(cap);
    }
    let mut cache_cap = vec![0.0; n];
    for (v, cap) in caches {
        in_range(v)?;
        cache_cap[v] = cap;
    }
    let requests = requests_raw
        .into_iter()
        .map(|(item, node, rate)| {
            Ok(Request {
                item,
                node: in_range(node)?,
                rate,
            })
        })
        .collect::<Result<Vec<_>, JcrError>>()?;
    let origin = origin.map(in_range).transpose()?;
    Instance::new(
        graph, link_cost, link_cap, cache_cap, item_size, requests, origin,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use jcr_topo::{Topology, TopologyKind};

    fn sample() -> Instance {
        InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, 14).unwrap())
            .items(5)
            .cache_capacity(2.0)
            .zipf_demand(0.9, 150.0, 14)
            .link_capacity_fraction(0.05)
            .build()
            .unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let inst = sample();
        let text = to_text(&inst);
        let back = from_text(&text).unwrap();
        assert_eq!(back.graph.node_count(), inst.graph.node_count());
        assert_eq!(back.graph.edge_count(), inst.graph.edge_count());
        assert_eq!(back.origin, inst.origin);
        assert_eq!(back.item_size, inst.item_size);
        assert_eq!(back.cache_cap, inst.cache_cap);
        for e in inst.graph.edges() {
            assert_eq!(back.graph.endpoints(e), inst.graph.endpoints(e));
            assert_eq!(back.link_cost[e.index()], inst.link_cost[e.index()]);
            assert_eq!(back.link_cap[e.index()], inst.link_cap[e.index()]);
        }
        assert_eq!(back.requests.len(), inst.requests.len());
        for (a, b) in back.requests.iter().zip(&inst.requests) {
            assert_eq!(a.item, b.item);
            assert_eq!(a.node, b.node);
            assert_eq!(a.rate, b.rate);
        }
    }

    #[test]
    fn round_trip_preserves_solver_results() {
        let inst = sample();
        let back = from_text(&to_text(&inst)).unwrap();
        let a = crate::alg1::Algorithm1::new().solve(&inst).unwrap();
        let b = crate::alg1::Algorithm1::new().solve(&back).unwrap();
        assert!((a.cost(&inst) - b.cost(&back)).abs() < 1e-9);
    }

    #[test]
    fn infinite_capacities_round_trip() {
        let inst = InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, 3).unwrap())
            .items(2)
            .build()
            .unwrap();
        let back = from_text(&to_text(&inst)).unwrap();
        assert!(back.link_cap.iter().all(|c| c.is_infinite()));
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(from_text("").is_err());
        assert!(from_text("not-a-header").is_err());
        assert!(from_text("jcr-instance v1\nfrobnicate 3").is_err());
        assert!(from_text("jcr-instance v1\nnodes 2\nlink 0 5 1 inf").is_err());
        assert!(from_text("jcr-instance v1\nlink 0 1 1 inf").is_err()); // missing nodes
        assert!(from_text("jcr-instance v1\nnodes 2\nlink 0 1 oops inf").is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\
jcr-instance v1

# a tiny instance
nodes 2
origin 0
item 1
link 0 1 5 inf   # the only link
request 0 1 2.5
";
        let inst = from_text(text).unwrap();
        assert_eq!(inst.graph.node_count(), 2);
        assert_eq!(inst.requests.len(), 1);
        assert_eq!(inst.requests[0].rate, 2.5);
    }
}
