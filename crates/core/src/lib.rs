//! The paper's contribution: joint caching and routing in cache networks
//! with arbitrary topology (ICDCS 2022).
//!
//! Given a directed network with per-link routing costs and capacities, a
//! content catalog, per-node cache capacities, and request rates
//! `λ_{(i,s)}`, the stack jointly decides **content placement** `x`
//! (which items each cache stores) and **routing** `(r, f)` (which source
//! and path serves each request) to minimize total routing cost — the
//! optimization (1) of the paper. Modules:
//!
//! * [`instance`] — the problem model and a builder for the paper's
//!   edge-caching scenario.
//! * [`placement`] / [`routing`] — solution representations with
//!   feasibility checks, cost, congestion, and cache-occupancy metrics.
//! * [`rnr`] — route-to-nearest-replica, the optimal routing under
//!   unlimited link capacities.
//! * [`alg1`] — **Algorithm 1**: `(1−1/e)`-approximate integral caching
//!   under unlimited link capacities via an auxiliary LP and pipage
//!   rounding (§4.1), in truly polynomial time.
//! * [`alg2`] — the binary-cache-capacity case reduced to MSUFP on an
//!   auxiliary graph (Lemma 4.5) and solved by the paper's Algorithm 2
//!   (§4.2).
//! * [`placement_opt`] — `(1−1/e)`-approximate content placement under a
//!   *given* (possibly fractional) routing (§4.3.1).
//! * [`hetero`] — greedy placement for heterogeneous item sizes under
//!   *p*-independence constraints (§5, Theorem 5.2).
//! * [`alternating`] — the general-case alternating optimization of
//!   caching and routing (§4.3.3).
//! * [`baselines`] — the evaluated state-of-the-art baselines: the
//!   candidate-path solution of Ioannidis & Yeh \[3\] (`k` shortest paths,
//!   with or without RNR re-routing) and the shortest-path placement of
//!   \[38\].
//! * [`fcfr`] — the exact LP for fractional caching + fractional routing
//!   (the polynomial-time case of Fig. 1).
//! * [`online`] / [`repair`] — the hourly re-optimization protocol (§6)
//!   with a fault-tolerant anytime degradation ladder and solution
//!   repair for carried decisions.

pub mod alg1;
pub mod alg2;
pub mod alternating;
pub mod auxiliary;
pub mod baselines;
pub mod certify;
pub mod error;
pub mod exact;
pub mod fcfr;
pub mod hetero;
pub mod instance;
pub mod online;
pub mod placement;
pub mod placement_opt;
pub mod repair;
pub mod report;
pub mod rnr;
pub mod routing;
pub mod serial;
pub mod state;
pub mod validate;

/// Convenient re-exports of the main entry points.
pub mod prelude {
    pub use crate::alg1::Algorithm1;
    pub use crate::alg2::{solve_binary_caches, BinaryCacheSolution};
    pub use crate::alternating::{
        Alternating, AlternatingSolution, PlacementMethod, RoutingMethod,
    };
    pub use crate::baselines::{CandidateRouting, IoannidisYeh, ShortestPathPlacement};
    pub use crate::certify::certify_solution;
    pub use crate::error::JcrError;
    pub use crate::instance::{Instance, InstanceBuilder, Request};
    pub use crate::online::{
        AnytimeConfig, ComponentStatus, HourOutcome, OnlineSimulator, RestoreReport, Rung,
    };
    pub use crate::placement::Placement;
    pub use crate::repair::repair_solution_checked;
    pub use crate::repair::{repair_solution, RepairStats};
    pub use crate::routing::{Routing, Solution};
    pub use crate::state::{SolverState, StateError};
}
