//! Content placement `x` and its feasibility/occupancy metrics.

use jcr_graph::NodeId;

use crate::instance::Instance;

/// An integral content placement: `x_{vi} ∈ {0, 1}` for every node and
/// item. The origin's implicit full copy is *not* part of the placement
/// (use [`Placement::has_with_origin`] where the origin counts as a
/// replica).
///
/// Stored as one flat row-major bitset (64 items per word): a
/// 1000-node × 10⁵-item stress placement is ~1.6 MB instead of the
/// ~100 MB (plus one allocation per node) of a `Vec<Vec<bool>>` matrix,
/// and per-node scans walk contiguous words.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    /// Row-major bit matrix: node `v`'s items live in words
    /// `[v * words_per_row, (v + 1) * words_per_row)`.
    bits: Vec<u64>,
    words_per_row: usize,
    n_nodes: usize,
    n_items: usize,
}

impl Placement {
    fn zeroed(n_nodes: usize, n_items: usize) -> Self {
        let words_per_row = n_items.div_ceil(64);
        Placement {
            bits: vec![0; n_nodes * words_per_row],
            words_per_row,
            n_nodes,
            n_items,
        }
    }

    /// An empty placement for the given instance.
    pub fn empty(inst: &Instance) -> Self {
        Placement::zeroed(inst.graph.node_count(), inst.num_items())
    }

    /// Builds a placement from a fractional/integral matrix
    /// `x[node][item]` by thresholding at 0.5.
    pub fn from_matrix(x: &[Vec<f64>]) -> Self {
        let n_items = x.first().map_or(0, Vec::len);
        let mut p = Placement::zeroed(x.len(), n_items);
        for (v, row) in x.iter().enumerate() {
            for (i, &val) in row.iter().enumerate() {
                if val >= 0.5 {
                    p.set(NodeId::new(v), i, true);
                }
            }
        }
        p
    }

    /// Whether node `v` stores item `i`.
    pub fn has(&self, v: NodeId, i: usize) -> bool {
        debug_assert!(i < self.n_items);
        let w = v.index() * self.words_per_row + i / 64;
        self.bits[w] >> (i % 64) & 1 == 1
    }

    /// Like [`Placement::has`], but the instance's origin always counts as
    /// storing everything.
    pub fn has_with_origin(&self, inst: &Instance, v: NodeId, i: usize) -> bool {
        inst.origin == Some(v) || self.has(v, i)
    }

    /// Stores (or evicts) item `i` at node `v`.
    pub fn set(&mut self, v: NodeId, i: usize, stored: bool) {
        debug_assert!(i < self.n_items);
        let w = v.index() * self.words_per_row + i / 64;
        if stored {
            self.bits[w] |= 1u64 << (i % 64);
        } else {
            self.bits[w] &= !(1u64 << (i % 64));
        }
    }

    /// The items stored at `v`, in increasing item order (word-skipping
    /// bit scan: empty regions of a sparse row cost one word test per 64
    /// items).
    pub fn items_at(&self, v: NodeId) -> impl Iterator<Item = usize> + '_ {
        let row = &self.bits[v.index() * self.words_per_row..(v.index() + 1) * self.words_per_row];
        row.iter().enumerate().flat_map(|(wi, &word)| {
            std::iter::successors((word != 0).then_some(word), |w| {
                let w = w & (w - 1);
                (w != 0).then_some(w)
            })
            .map(move |w| wi * 64 + w.trailing_zeros() as usize)
        })
    }

    /// Nodes storing item `i` (excluding the implicit origin copy).
    pub fn holders(&self, i: usize) -> impl Iterator<Item = NodeId> + '_ {
        let (word, bit) = (i / 64, i % 64);
        (0..self.n_nodes)
            .filter(move |v| self.bits[v * self.words_per_row + word] >> bit & 1 == 1)
            .map(NodeId::new)
    }

    /// Size-weighted occupancy of node `v`'s cache.
    pub fn occupancy(&self, inst: &Instance, v: NodeId) -> f64 {
        self.items_at(v).map(|i| inst.item_size[i]).sum()
    }

    /// Maximum occupancy-to-capacity ratio over nodes with positive cache
    /// capacity — the paper's "maximum cache occupancy" metric (Fig. 5).
    pub fn max_occupancy_ratio(&self, inst: &Instance) -> f64 {
        inst.graph
            .nodes()
            .filter(|&v| inst.cache_cap[v.index()] > 0.0)
            .map(|v| self.occupancy(inst, v) / inst.cache_cap[v.index()])
            .fold(0.0, f64::max)
    }

    /// Whether every node's occupancy is within its cache capacity
    /// (constraint (1f) / (16)).
    pub fn is_feasible(&self, inst: &Instance) -> bool {
        inst.graph
            .nodes()
            .all(|v| self.occupancy(inst, v) <= inst.cache_cap[v.index()] + 1e-9)
    }

    /// Whether the placement's dimensions match `inst` (same node and
    /// item counts). A placement carried across re-optimization epochs
    /// may have been built for a different instance.
    pub fn dims_match(&self, inst: &Instance) -> bool {
        self.n_nodes == inst.graph.node_count() && self.n_items == inst.num_items()
    }

    /// Repairs the placement against `inst` so that every cache fits its
    /// capacity: overflowing nodes greedily evict their least valuable
    /// items (lowest locally requested rate per unit of size) until
    /// constraint (1f)/(16) holds. A dimension mismatch resets the
    /// placement to empty. Returns the number of evicted (node, item)
    /// pairs.
    ///
    /// This is the placement half of the carry-forward repair rung in the
    /// online loop's degradation ladder (see `jcr_core::repair`).
    pub fn repair(&mut self, inst: &Instance) -> usize {
        if !self.dims_match(inst) {
            let evicted = self.len();
            *self = Placement::empty(inst);
            return evicted;
        }
        let mut evicted = 0;
        for v in inst.graph.nodes() {
            let cap = inst.cache_cap[v.index()];
            if self.occupancy(inst, v) <= cap + 1e-9 {
                continue;
            }
            // Local demand for each stored item, as rate per unit size.
            let mut stored: Vec<(f64, usize)> = self
                .items_at(v)
                .map(|i| {
                    let rate: f64 = inst
                        .requests
                        .iter()
                        .filter(|r| r.node == v && r.item == i)
                        .map(|r| r.rate)
                        .sum();
                    (rate / inst.item_size[i].max(1e-12), i)
                })
                .collect();
            stored.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            for &(_, i) in &stored {
                if self.occupancy(inst, v) <= cap + 1e-9 {
                    break;
                }
                self.set(v, i, false);
                evicted += 1;
            }
        }
        evicted
    }

    /// The raw parts of the bitset — `(dims, words)` with
    /// `dims = (n_nodes, n_items)` — for snapshot serialization. The word
    /// layout is an implementation detail; pair only with
    /// [`Placement::from_raw_parts`].
    pub fn to_raw_parts(&self) -> ((usize, usize), &[u64]) {
        ((self.n_nodes, self.n_items), &self.bits)
    }

    /// Rebuilds a placement from [`Placement::to_raw_parts`] output.
    /// Returns `None` if the word count disagrees with the dimensions or
    /// a padding bit beyond `n_items` is set (a corrupt or foreign
    /// snapshot).
    pub fn from_raw_parts(n_nodes: usize, n_items: usize, words: &[u64]) -> Option<Self> {
        let words_per_row = n_items.div_ceil(64);
        if words.len() != n_nodes.checked_mul(words_per_row)? {
            return None;
        }
        let tail_bits = n_items % 64;
        if words_per_row > 0 && tail_bits != 0 {
            let pad_mask = !0u64 << tail_bits;
            for row in 0..n_nodes {
                if words[row * words_per_row + words_per_row - 1] & pad_mask != 0 {
                    return None;
                }
            }
        }
        Some(Placement {
            bits: words.to_vec(),
            words_per_row,
            n_nodes,
            n_items,
        })
    }

    /// Total number of stored (node, item) pairs.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether nothing is stored anywhere.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use jcr_topo::{Topology, TopologyKind};

    fn inst() -> Instance {
        InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, 2).unwrap())
            .items(4)
            .cache_capacity(2.0)
            .build()
            .unwrap()
    }

    #[test]
    fn set_and_query() {
        let inst = inst();
        let mut p = Placement::empty(&inst);
        let v = inst.cache_nodes()[0];
        assert!(p.is_empty());
        p.set(v, 1, true);
        p.set(v, 3, true);
        assert!(p.has(v, 1));
        assert!(!p.has(v, 0));
        assert_eq!(p.items_at(v).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(p.holders(1).collect::<Vec<_>>(), vec![v]);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn origin_counts_as_holder() {
        let inst = inst();
        let p = Placement::empty(&inst);
        let o = inst.origin.unwrap();
        assert!(p.has_with_origin(&inst, o, 2));
        assert!(!p.has(o, 2));
    }

    #[test]
    fn feasibility_and_occupancy() {
        let inst = inst();
        let v = inst.cache_nodes()[0];
        let mut p = Placement::empty(&inst);
        p.set(v, 0, true);
        p.set(v, 1, true);
        assert!(p.is_feasible(&inst));
        assert_eq!(p.occupancy(&inst, v), 2.0);
        assert!((p.max_occupancy_ratio(&inst) - 1.0).abs() < 1e-12);
        p.set(v, 2, true);
        assert!(!p.is_feasible(&inst));
        assert!(p.max_occupancy_ratio(&inst) > 1.0);
    }

    #[test]
    fn repair_evicts_least_demanded_first() {
        let inst = InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, 2).unwrap())
            .items(4)
            .cache_capacity(2.0)
            .zipf_demand(0.8, 100.0, 2)
            .build()
            .unwrap();
        let v = inst.cache_nodes()[0];
        let mut p = Placement::empty(&inst);
        for i in 0..inst.num_items() {
            p.set(v, i, true); // 4 unit items in a 2-unit cache
        }
        let evicted = p.repair(&inst);
        assert_eq!(evicted, 2);
        assert!(p.is_feasible(&inst));
        // Zipf demand decreases in the item index, so the heavy head
        // items survive.
        assert!(p.has(v, 0));
        assert!(!p.has(v, 3));
    }

    #[test]
    fn repair_resets_on_dimension_mismatch() {
        let small = inst();
        let big = InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, 2).unwrap())
            .items(9)
            .cache_capacity(2.0)
            .build()
            .unwrap();
        let mut p = Placement::empty(&big);
        p.set(big.cache_nodes()[0], 7, true);
        assert!(!p.dims_match(&small));
        let evicted = p.repair(&small);
        assert_eq!(evicted, 1);
        assert!(p.is_empty());
        assert!(p.dims_match(&small));
    }

    #[test]
    fn repair_is_a_noop_on_feasible_placements() {
        let inst = inst();
        let mut p = Placement::empty(&inst);
        p.set(inst.cache_nodes()[0], 1, true);
        let before = p.clone();
        assert_eq!(p.repair(&inst), 0);
        assert_eq!(p, before);
    }

    #[test]
    fn raw_parts_round_trip_and_reject_padding() {
        let inst = inst();
        let mut p = Placement::empty(&inst);
        let v = inst.cache_nodes()[0];
        p.set(v, 0, true);
        p.set(v, 3, true);
        let ((n_nodes, n_items), words) = p.to_raw_parts();
        let back = Placement::from_raw_parts(n_nodes, n_items, words).expect("round trip");
        assert_eq!(back, p);
        // Wrong word count.
        assert!(Placement::from_raw_parts(n_nodes, n_items, &words[1..]).is_none());
        // A set padding bit beyond n_items (4 items -> bits 4..64 are pad).
        let mut bad = words.to_vec();
        bad[v.index()] |= 1u64 << 17;
        assert!(Placement::from_raw_parts(n_nodes, n_items, &bad).is_none());
    }

    #[test]
    fn from_matrix_thresholds() {
        let x = vec![vec![0.9, 0.1], vec![0.5, 0.49]];
        let p = Placement::from_matrix(&x);
        assert!(p.has(NodeId::new(0), 0));
        assert!(!p.has(NodeId::new(0), 1));
        assert!(p.has(NodeId::new(1), 0));
        assert!(!p.has(NodeId::new(1), 1));
    }
}
