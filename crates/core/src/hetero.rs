//! Heterogeneous item sizes (§5): greedy content placement under the
//! per-node knapsack (*p*-independence) constraint of Lemma 5.1.
//!
//! Pipage rounding cannot swap fractions of different-sized items without
//! overflowing caches, but both cost-saving objectives remain monotone
//! submodular (Lemmas 4.1 and 5.3), so lazy greedy achieves a `1/(1+p)`
//! approximation with `p = ⌈b_max/b_min⌉` (Theorem 5.2). The same greedy
//! is also valid (with ratio 1/2) for equal-sized items, where the
//! knapsack degenerates to a partition matroid.

use jcr_graph::NodeId;
use jcr_submodular::constraint::Knapsack;
use jcr_submodular::greedy::lazy_greedy;
use jcr_submodular::Oracle;

use crate::instance::Instance;
use crate::placement::Placement;
use crate::placement_opt::{extract_segments, Segment};
use crate::routing::Routing;

/// Ground-set bookkeeping: element `vi * n_items + i` is "cache item `i`
/// at `cache_nodes[vi]`".
struct Ground {
    cache_nodes: Vec<NodeId>,
    n_items: usize,
}

impl Ground {
    fn new(inst: &Instance) -> Self {
        Ground {
            cache_nodes: inst.cache_nodes(),
            n_items: inst.num_items(),
        }
    }

    fn size(&self) -> usize {
        self.cache_nodes.len() * self.n_items
    }

    fn decode(&self, e: usize) -> (NodeId, usize) {
        (self.cache_nodes[e / self.n_items], e % self.n_items)
    }

    fn knapsack(&self, inst: &Instance) -> Knapsack {
        let group_of: Vec<usize> = (0..self.size()).map(|e| e / self.n_items).collect();
        let size: Vec<f64> = (0..self.size())
            .map(|e| inst.item_size[e % self.n_items])
            .collect();
        let capacity: Vec<f64> = self
            .cache_nodes
            .iter()
            .map(|&v| inst.cache_cap[v.index()])
            .collect();
        Knapsack::new(group_of, size, capacity)
    }

    fn placement(&self, selected: &[usize], inst: &Instance) -> Placement {
        let mut p = Placement::empty(inst);
        for &e in selected {
            let (v, i) = self.decode(e);
            p.set(v, i, true);
        }
        p
    }
}

/// Oracle for `F̃_RNR` (Lemma 4.1): the saving of serving each request
/// from its nearest replica instead of its current best source.
struct RnrOracle<'a> {
    inst: &'a Instance,
    ground: &'a Ground,
    /// Current least cost per request (starts at the origin's distance, or
    /// `w_max` when unreachable).
    best: Vec<f64>,
    value: f64,
}

impl<'a> RnrOracle<'a> {
    fn new(inst: &'a Instance, ground: &'a Ground) -> Self {
        let ap = inst.all_pairs();
        let w_max = inst.w_max();
        let best = inst
            .requests
            .iter()
            .map(|r| match inst.origin {
                Some(o) => {
                    let d = ap.dist(o, r.node);
                    if d.is_finite() {
                        d
                    } else {
                        w_max
                    }
                }
                None => w_max,
            })
            .collect();
        RnrOracle {
            inst,
            ground,
            best,
            value: 0.0,
        }
    }
}

impl Oracle for RnrOracle<'_> {
    fn ground_size(&self) -> usize {
        self.ground.size()
    }

    fn gain(&self, element: usize) -> f64 {
        let (v, i) = self.ground.decode(element);
        let ap = self.inst.all_pairs();
        self.inst
            .requests
            .iter()
            .enumerate()
            .filter(|(_, r)| r.item == i)
            .map(|(k, r)| {
                let d = ap.dist(v, r.node);
                if d.is_finite() {
                    r.rate * (self.best[k] - d).max(0.0)
                } else {
                    0.0
                }
            })
            .sum()
    }

    fn insert(&mut self, element: usize) {
        let (v, i) = self.ground.decode(element);
        let ap = self.inst.all_pairs();
        for (k, r) in self.inst.requests.iter().enumerate() {
            if r.item == i {
                let d = ap.dist(v, r.node);
                if d.is_finite() && d < self.best[k] {
                    self.value += r.rate * (self.best[k] - d);
                    self.best[k] = d;
                }
            }
        }
    }

    fn value(&self) -> f64 {
        self.value
    }
}

/// Oracle for `F̃_{r,f}` (Lemma 5.3) over the segments of Eq. (14): a
/// weighted-coverage function (an element covers the segments of its item
/// whose prefix contains its node).
struct CoverOracle {
    /// Segment weights.
    weight: Vec<f64>,
    /// Segments covered by each element.
    covers: Vec<Vec<usize>>,
    covered: Vec<bool>,
    value: f64,
}

impl CoverOracle {
    fn new(inst: &Instance, ground: &Ground, segments: &[Segment]) -> Self {
        let mut node_pos = vec![None; inst.graph.node_count()];
        for (k, &v) in ground.cache_nodes.iter().enumerate() {
            node_pos[v.index()] = Some(k);
        }
        let mut weight = Vec::new();
        let mut covers = vec![Vec::new(); ground.size()];
        for seg in segments {
            if seg.saved_by_origin || seg.weight <= 0.0 {
                continue;
            }
            let s = weight.len();
            weight.push(seg.weight);
            for &v in &seg.prefix {
                if let Some(vi) = node_pos[v.index()] {
                    covers[vi * ground.n_items + seg.item].push(s);
                }
            }
        }
        let covered = vec![false; weight.len()];
        CoverOracle {
            weight,
            covers,
            covered,
            value: 0.0,
        }
    }
}

impl Oracle for CoverOracle {
    fn ground_size(&self) -> usize {
        self.covers.len()
    }

    fn gain(&self, element: usize) -> f64 {
        self.covers[element]
            .iter()
            .filter(|&&s| !self.covered[s])
            .map(|&s| self.weight[s])
            .sum()
    }

    fn insert(&mut self, element: usize) {
        for &s in &self.covers[element] {
            if !self.covered[s] {
                self.covered[s] = true;
                self.value += self.weight[s];
            }
        }
    }

    fn value(&self) -> f64 {
        self.value
    }
}

/// Greedy placement maximizing `F̃_RNR` under per-node knapsack
/// constraints — the unlimited-link-capacity case of §5.2.2
/// (`1/(1+p)`-approximate, Theorem 5.2).
pub fn greedy_placement_rnr(inst: &Instance) -> Placement {
    let ground = Ground::new(inst);
    let mut oracle = RnrOracle::new(inst, &ground);
    let mut constraint = ground.knapsack(inst);
    let result = lazy_greedy(&mut oracle, &mut constraint);
    ground.placement(&result.selected, inst)
}

/// Greedy placement maximizing `F̃_{r,f}` under per-node knapsack
/// constraints — the placement step of the general-case alternating
/// optimization for heterogeneous sizes (§5.2.3).
pub fn greedy_placement_given_routing(inst: &Instance, routing: &Routing) -> Placement {
    let ground = Ground::new(inst);
    let segments = extract_segments(inst, routing);
    let mut oracle = CoverOracle::new(inst, &ground, &segments);
    let mut constraint = ground.knapsack(inst);
    let result = lazy_greedy(&mut oracle, &mut constraint);
    ground.placement(&result.selected, inst)
}

/// The independence parameter `p = ⌈b_max/b_min⌉` of the instance
/// (Lemma 5.1); the greedy guarantee is `1/(1+p)`.
pub fn independence_parameter(inst: &Instance) -> usize {
    let b_max = inst.item_size.iter().copied().fold(0.0f64, f64::max);
    let b_min = inst.item_size.iter().copied().fold(f64::INFINITY, f64::min);
    (b_max / b_min).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg1::f_rnr;
    use crate::instance::InstanceBuilder;
    use crate::placement_opt::f_given_routing;
    use crate::rnr;
    use jcr_topo::{Topology, TopologyKind};

    fn file_level_inst(seed: u64) -> Instance {
        // Sizes in 100-MB units, like the paper's file-level simulation.
        InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, seed).unwrap())
            .item_sizes(vec![4.5, 6.1, 7.5, 3.9, 8.5, 4.3, 1.6, 7.1, 1.6, 3.1])
            .cache_capacity(10.0)
            .zipf_demand(0.8, 100.0, seed)
            .build()
            .unwrap()
    }

    #[test]
    fn rnr_greedy_is_feasible_and_saves_cost() {
        let inst = file_level_inst(31);
        let p = greedy_placement_rnr(&inst);
        assert!(p.is_feasible(&inst));
        assert!(!p.is_empty());
        let empty_cost = rnr::rnr_cost(&inst, &Placement::empty(&inst)).unwrap();
        let greedy_cost = rnr::rnr_cost(&inst, &p).unwrap();
        assert!(greedy_cost < empty_cost);
    }

    #[test]
    fn routing_greedy_is_feasible_and_saves_cost() {
        let inst = file_level_inst(32);
        let routing = rnr::route_to_nearest_replica(&inst, &Placement::empty(&inst)).unwrap();
        let p = greedy_placement_given_routing(&inst, &routing);
        assert!(p.is_feasible(&inst));
        assert!(f_given_routing(&inst, &routing, &p) > 0.0);
    }

    #[test]
    fn cover_oracle_gain_matches_objective_delta() {
        // The oracle's marginal gains must agree with recomputing the
        // set-function value from scratch.
        let inst = file_level_inst(35);
        let routing = rnr::route_to_nearest_replica(&inst, &Placement::empty(&inst)).unwrap();
        let ground = Ground::new(&inst);
        let segments = extract_segments(&inst, &routing);
        let mut oracle = CoverOracle::new(&inst, &ground, &segments);
        let mut placement = Placement::empty(&inst);
        for e in [0usize, 3, 7, 11] {
            let e = e % ground.size();
            let before = f_given_routing(&inst, &routing, &placement);
            let gain = oracle.gain(e);
            let (v, i) = ground.decode(e);
            if placement.has(v, i) {
                continue;
            }
            oracle.insert(e);
            placement.set(v, i, true);
            let after = f_given_routing(&inst, &routing, &placement);
            assert!(
                (after - before - gain).abs() < 1e-6 * (1.0 + after.abs()),
                "element {e}: gain {gain} vs delta {}",
                after - before
            );
        }
    }

    #[test]
    fn independence_parameter_matches_sizes() {
        let inst = file_level_inst(33);
        // 8.5 / 1.6 = 5.3 → p = 6.
        assert_eq!(independence_parameter(&inst), 6);
    }

    #[test]
    fn greedy_matches_alg1_objective_shape_on_homogeneous() {
        // On equal-sized items both RNR-placements chase the same
        // objective; greedy (1/2) should land within a factor of the LP
        // pipage result (1 − 1/e).
        let inst = InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, 17).unwrap())
            .items(8)
            .cache_capacity(2.0)
            .zipf_demand(0.8, 100.0, 17)
            .build()
            .unwrap();
        let greedy = greedy_placement_rnr(&inst);
        let alg1 = crate::alg1::Algorithm1::new().place(&inst).unwrap();
        let fg = f_rnr(&inst, &greedy);
        let fa = f_rnr(&inst, &alg1);
        assert!(fg > 0.0 && fa > 0.0);
        assert!(fg >= 0.5 * fa, "greedy {fg} too far below alg1 {fa}");
    }

    #[test]
    fn half_approximation_against_brute_force() {
        // Tiny heterogeneous instance with brute-forced optimum.
        let inst = InstanceBuilder::new(Topology::generate_custom(8, 10, 2, 5).unwrap())
            .item_sizes(vec![2.0, 1.0, 3.0])
            .cache_capacity(3.0)
            .zipf_demand(1.0, 50.0, 5)
            .build()
            .unwrap();
        let p = greedy_placement_rnr(&inst);
        let achieved = f_rnr(&inst, &p) - baseline_f(&inst);
        let opt = brute_force(&inst) - baseline_f(&inst);
        let bound = opt / (1.0 + independence_parameter(&inst) as f64);
        assert!(
            achieved >= bound - 1e-6,
            "greedy {achieved} below 1/(1+p) bound {bound}"
        );
    }

    /// `F_RNR` of the empty placement (the origin's baseline saving).
    fn baseline_f(inst: &Instance) -> f64 {
        f_rnr(inst, &Placement::empty(inst))
    }

    fn brute_force(inst: &Instance) -> f64 {
        let ground = Ground::new(inst);
        let n = ground.size();
        assert!(n <= 16);
        let mut best = f64::NEG_INFINITY;
        'mask: for mask in 0u32..(1 << n) {
            let mut p = Placement::empty(inst);
            let mut used = vec![0.0; ground.cache_nodes.len()];
            for e in 0..n {
                if mask & (1 << e) != 0 {
                    let (v, i) = ground.decode(e);
                    used[e / ground.n_items] += inst.item_size[i];
                    if used[e / ground.n_items] > inst.cache_cap[v.index()] + 1e-9 {
                        continue 'mask;
                    }
                    p.set(v, i, true);
                }
            }
            best = best.max(f_rnr(inst, &p));
        }
        best
    }
}
