//! Versioned, checksummed solver-state snapshots for crash recovery.
//!
//! A [`SolverState`] captures everything the online loop carries between
//! hours that can change the *bits* of future decisions: the committed
//! placement, the served routing, the simplex [`Basis`](jcr_lp::Basis) of
//! the last placement LP, and the active column-generation pool. Distance
//! -oracle rows are deliberately **not** snapshotted: carried rows are
//! bit-identical to freshly computed ones (see
//! [`DistanceOracle::carry_with_config`](jcr_graph::DistanceOracle::carry_with_config)),
//! so resuming without them changes speed, never answers.
//!
//! # Wire format
//!
//! The binary codec is self-describing and versioned:
//!
//! ```text
//! magic   8 bytes  b"JCRSNAP1"
//! version u32 LE   currently 1
//! len     u64 LE   payload length in bytes
//! check   u64 LE   FNV-1a 64 over the payload
//! payload          a sequence of sections
//! ```
//!
//! Each section is `tag: u32 LE`, `len: u64 LE`, then `len` body bytes.
//! Unknown tags are skipped (forward compatibility); the EPOCH section is
//! mandatory. All integers are little-endian; floats travel as
//! `f64::to_bits` so round-trips are exact.
//!
//! Decoding ([`SolverState::from_bytes`]) is *structural* only — magic,
//! version, checksum, and section framing. Semantic validation (do the
//! placement words fit the dimensions? are edge ids in range? does the
//! basis re-factorize?) happens in the restore gate
//! ([`OnlineSimulator::restore`](crate::online::OnlineSimulator::restore)),
//! which degrades each component independently instead of failing the
//! whole snapshot.
//!
//! For debugging there is also a lossless JSON dump
//! ([`SolverState::to_debug_json`]) — human-readable, never parsed back.

use std::fmt;
use std::path::Path as FsPath;

/// Leading magic of every snapshot file.
pub const MAGIC: [u8; 8] = *b"JCRSNAP1";
/// Current wire-format version.
pub const VERSION: u32 = 1;

const TAG_EPOCH: u32 = 1;
const TAG_PLACEMENT: u32 = 2;
const TAG_ROUTING: u32 = 3;
const TAG_BASIS: u32 = 4;
const TAG_COLUMNS: u32 = 5;

/// Why a snapshot failed to load or decode.
#[derive(Debug)]
pub enum StateError {
    /// Filesystem failure (message carries the underlying error).
    Io(String),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The header version is not [`VERSION`].
    BadVersion(u32),
    /// The payload is shorter than the header (or a section) claims.
    Truncated,
    /// The FNV-1a checksum over the payload does not match the header.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum recomputed over the payload.
        found: u64,
    },
    /// Framing is intact but a section's contents are inconsistent.
    Malformed(&'static str),
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::Io(msg) => write!(f, "snapshot io error: {msg}"),
            StateError::BadMagic => write!(f, "snapshot magic mismatch (not a JCR snapshot)"),
            StateError::BadVersion(v) => {
                write!(f, "snapshot version {v} unsupported (expected {VERSION})")
            }
            StateError::Truncated => write!(f, "snapshot truncated"),
            StateError::ChecksumMismatch { expected, found } => write!(
                f,
                "snapshot checksum mismatch (header {expected:#018x}, payload {found:#018x})"
            ),
            StateError::Malformed(what) => write!(f, "snapshot malformed: {what}"),
        }
    }
}

impl std::error::Error for StateError {}

/// One routed flow of a request, in wire form: the flow amount as
/// `f64::to_bits` and the path as edge indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowRecord {
    /// `f64::to_bits` of the flow amount.
    pub amount_bits: u64,
    /// Edge indices along the path, in traversal order.
    pub edges: Vec<u32>,
}

/// A carried column-generation column, in wire form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnRecord {
    /// Commodity (request) index the column priced for.
    pub commodity: u32,
    /// Auxiliary-graph node sequence of the column's path.
    pub nodes: Vec<u32>,
}

/// Everything the online loop carries between hours, in a raw wire-level
/// representation (see the module docs for what is deliberately absent).
///
/// Fields are raw on purpose: decoding never consults an
/// [`Instance`](crate::instance::Instance), so a snapshot loads
/// anywhere, and the
/// semantic restore gate can degrade components one at a time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SolverState {
    /// Hours committed before this snapshot was taken.
    pub hour: u64,
    /// Node count of the instance the state was committed against.
    pub n_nodes: u32,
    /// Item (catalog) count.
    pub n_items: u32,
    /// Edge count.
    pub n_edges: u32,
    /// Request count.
    pub n_requests: u32,
    /// Placement bitset words (row-major, one row of
    /// `ceil(n_items / 64)` words per node), when an hour has committed.
    pub placement: Option<Vec<u64>>,
    /// Served routing: per request, its path flows.
    pub routing: Option<Vec<Vec<FlowRecord>>>,
    /// Serialized simplex basis ([`jcr_lp::Basis::to_bytes`]), when the
    /// serving rung produced one.
    pub basis: Option<Vec<u8>>,
    /// Active column pool carried into the next hour.
    pub columns: Vec<ColumnRecord>,
}

impl SolverState {
    /// Serializes to the versioned, checksummed wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        section(&mut payload, TAG_EPOCH, |b| {
            put_u64(b, self.hour);
            put_u32(b, self.n_nodes);
            put_u32(b, self.n_items);
            put_u32(b, self.n_edges);
            put_u32(b, self.n_requests);
        });
        if let Some(words) = &self.placement {
            section(&mut payload, TAG_PLACEMENT, |b| {
                put_u64(b, words.len() as u64);
                for &w in words {
                    put_u64(b, w);
                }
            });
        }
        if let Some(routing) = &self.routing {
            section(&mut payload, TAG_ROUTING, |b| {
                put_u64(b, routing.len() as u64);
                for flows in routing {
                    put_u64(b, flows.len() as u64);
                    for flow in flows {
                        put_u64(b, flow.amount_bits);
                        put_u64(b, flow.edges.len() as u64);
                        for &e in &flow.edges {
                            put_u32(b, e);
                        }
                    }
                }
            });
        }
        if let Some(basis) = &self.basis {
            section(&mut payload, TAG_BASIS, |b| b.extend_from_slice(basis));
        }
        if !self.columns.is_empty() {
            section(&mut payload, TAG_COLUMNS, |b| {
                put_u64(b, self.columns.len() as u64);
                for col in &self.columns {
                    put_u32(b, col.commodity);
                    put_u64(b, col.nodes.len() as u64);
                    for &v in &col.nodes {
                        put_u32(b, v);
                    }
                }
            });
        }

        let mut out = Vec::with_capacity(28 + payload.len());
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, VERSION);
        put_u64(&mut out, payload.len() as u64);
        put_u64(&mut out, fnv1a(&payload));
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes the wire format, verifying magic, version, length, and
    /// checksum, and the framing of every section.
    ///
    /// # Errors
    ///
    /// Any [`StateError`] variant except `Io`; see the module docs for
    /// what each means.
    pub fn from_bytes(bytes: &[u8]) -> Result<SolverState, StateError> {
        if bytes.len() < 28 {
            return Err(if bytes.len() >= 8 && bytes[..8] != MAGIC {
                StateError::BadMagic
            } else {
                StateError::Truncated
            });
        }
        if bytes[..8] != MAGIC {
            return Err(StateError::BadMagic);
        }
        let mut r = Reader { buf: bytes, pos: 8 };
        let version = r.u32()?;
        if version != VERSION {
            return Err(StateError::BadVersion(version));
        }
        let payload_len = r.u64()? as usize;
        let expected = r.u64()?;
        let payload = r.bytes(payload_len)?;
        if r.pos != bytes.len() {
            return Err(StateError::Malformed("trailing bytes after payload"));
        }
        let found = fnv1a(payload);
        if found != expected {
            return Err(StateError::ChecksumMismatch { expected, found });
        }

        let mut state = SolverState::default();
        let mut saw_epoch = false;
        let mut r = Reader {
            buf: payload,
            pos: 0,
        };
        while r.pos < payload.len() {
            let tag = r.u32()?;
            let len = r.u64()? as usize;
            let body = r.bytes(len)?;
            let mut s = Reader { buf: body, pos: 0 };
            match tag {
                TAG_EPOCH => {
                    state.hour = s.u64()?;
                    state.n_nodes = s.u32()?;
                    state.n_items = s.u32()?;
                    state.n_edges = s.u32()?;
                    state.n_requests = s.u32()?;
                    saw_epoch = true;
                }
                TAG_PLACEMENT => {
                    let count = s.u64()? as usize;
                    let mut words = Vec::new();
                    reserve(&mut words, count, body.len(), 8)?;
                    for _ in 0..count {
                        words.push(s.u64()?);
                    }
                    state.placement = Some(words);
                }
                TAG_ROUTING => {
                    let n_requests = s.u64()? as usize;
                    let mut routing = Vec::new();
                    reserve(&mut routing, n_requests, body.len(), 8)?;
                    for _ in 0..n_requests {
                        let n_flows = s.u64()? as usize;
                        let mut flows = Vec::new();
                        reserve(&mut flows, n_flows, body.len(), 16)?;
                        for _ in 0..n_flows {
                            let amount_bits = s.u64()?;
                            let n_edges = s.u64()? as usize;
                            let mut edges = Vec::new();
                            reserve(&mut edges, n_edges, body.len(), 4)?;
                            for _ in 0..n_edges {
                                edges.push(s.u32()?);
                            }
                            flows.push(FlowRecord { amount_bits, edges });
                        }
                        routing.push(flows);
                    }
                    state.routing = Some(routing);
                }
                TAG_BASIS => {
                    state.basis = Some(body.to_vec());
                }
                TAG_COLUMNS => {
                    let count = s.u64()? as usize;
                    let mut columns = Vec::new();
                    reserve(&mut columns, count, body.len(), 12)?;
                    for _ in 0..count {
                        let commodity = s.u32()?;
                        let n_nodes = s.u64()? as usize;
                        let mut nodes = Vec::new();
                        reserve(&mut nodes, n_nodes, body.len(), 4)?;
                        for _ in 0..n_nodes {
                            nodes.push(s.u32()?);
                        }
                        columns.push(ColumnRecord { commodity, nodes });
                    }
                    state.columns = columns;
                }
                // Unknown section: self-describing framing lets us skip it.
                _ => {}
            }
            if matches!(tag, TAG_EPOCH | TAG_ROUTING | TAG_PLACEMENT | TAG_COLUMNS)
                && s.pos != body.len()
            {
                return Err(StateError::Malformed("section body has trailing bytes"));
            }
        }
        if !saw_epoch {
            return Err(StateError::Malformed("missing EPOCH section"));
        }
        Ok(state)
    }

    /// Writes the binary snapshot to `path` (atomic enough for the chaos
    /// harness: a short single `write`; torn writes surface as
    /// [`StateError::Truncated`] / `ChecksumMismatch` on load, never as
    /// silently wrong state).
    ///
    /// # Errors
    ///
    /// [`StateError::Io`] with the underlying message.
    pub fn save(&self, path: &FsPath) -> Result<(), StateError> {
        std::fs::write(path, self.to_bytes()).map_err(|e| StateError::Io(e.to_string()))
    }

    /// Reads and decodes a binary snapshot from `path`.
    ///
    /// # Errors
    ///
    /// [`StateError::Io`] on read failure, otherwise whatever
    /// [`SolverState::from_bytes`] reports.
    pub fn load(path: &FsPath) -> Result<SolverState, StateError> {
        let bytes = std::fs::read(path).map_err(|e| StateError::Io(e.to_string()))?;
        SolverState::from_bytes(&bytes)
    }

    /// A lossless, human-readable JSON rendering for debugging and chaos
    /// artifacts. Never parsed back — the binary format is the contract.
    pub fn to_debug_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"hour\": {},\n", self.hour));
        s.push_str(&format!(
            "  \"dims\": {{\"nodes\": {}, \"items\": {}, \"edges\": {}, \"requests\": {}}},\n",
            self.n_nodes, self.n_items, self.n_edges, self.n_requests
        ));
        match &self.placement {
            Some(words) => {
                let hex: Vec<String> = words.iter().map(|w| format!("\"{w:#018x}\"")).collect();
                s.push_str(&format!("  \"placement\": [{}],\n", hex.join(", ")));
            }
            None => s.push_str("  \"placement\": null,\n"),
        }
        match &self.routing {
            Some(routing) => {
                s.push_str("  \"routing\": [\n");
                for (i, flows) in routing.iter().enumerate() {
                    let rendered: Vec<String> = flows
                        .iter()
                        .map(|f| {
                            format!(
                                "{{\"amount\": {}, \"edges\": {:?}}}",
                                f64::from_bits(f.amount_bits),
                                f.edges
                            )
                        })
                        .collect();
                    let sep = if i + 1 < routing.len() { "," } else { "" };
                    s.push_str(&format!("    [{}]{}\n", rendered.join(", "), sep));
                }
                s.push_str("  ],\n");
            }
            None => s.push_str("  \"routing\": null,\n"),
        }
        s.push_str(&format!(
            "  \"basis_bytes\": {},\n",
            self.basis.as_ref().map_or(0, Vec::len)
        ));
        s.push_str("  \"columns\": [\n");
        for (i, col) in self.columns.iter().enumerate() {
            let sep = if i + 1 < self.columns.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"commodity\": {}, \"nodes\": {:?}}}{}\n",
                col.commodity, col.nodes, sep
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// FNV-1a 64-bit over `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends one `tag, len, body` section, with `fill` writing the body.
fn section(out: &mut Vec<u8>, tag: u32, fill: impl FnOnce(&mut Vec<u8>)) {
    put_u32(out, tag);
    let len_at = out.len();
    put_u64(out, 0);
    let body_at = out.len();
    fill(out);
    let len = (out.len() - body_at) as u64;
    out[len_at..len_at + 8].copy_from_slice(&len.to_le_bytes());
}

/// Guards `Vec::with_capacity`-style reservations against hostile counts:
/// a section body of `body_len` bytes cannot hold more than
/// `body_len / min_elem_size` elements, so a larger claimed count is
/// malformed rather than an allocation bomb.
fn reserve<T>(
    vec: &mut Vec<T>,
    count: usize,
    body_len: usize,
    min_elem_size: usize,
) -> Result<(), StateError> {
    if count > body_len / min_elem_size {
        return Err(StateError::Malformed("section count exceeds body size"));
    }
    vec.reserve(count);
    Ok(())
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn bytes(&mut self, len: usize) -> Result<&'a [u8], StateError> {
        let end = self.pos.checked_add(len).ok_or(StateError::Truncated)?;
        if end > self.buf.len() {
            return Err(StateError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, StateError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, StateError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SolverState {
        SolverState {
            hour: 7,
            n_nodes: 11,
            n_items: 6,
            n_edges: 48,
            n_requests: 5,
            placement: Some(vec![0b101, 0b011, 0, 1, 2, 3, 4, 5, 6, 7, 8]),
            routing: Some(vec![
                vec![FlowRecord {
                    amount_bits: 3.25f64.to_bits(),
                    edges: vec![0, 5, 7],
                }],
                vec![
                    FlowRecord {
                        amount_bits: 1.5f64.to_bits(),
                        edges: vec![2],
                    },
                    FlowRecord {
                        amount_bits: 0.25f64.to_bits(),
                        edges: vec![3, 4],
                    },
                ],
                vec![],
                vec![],
                vec![],
            ]),
            basis: Some(vec![1, 2, 3, 4, 5, 6, 7, 8, 0, 1, 2]),
            columns: vec![
                ColumnRecord {
                    commodity: 0,
                    nodes: vec![12, 3, 7],
                },
                ColumnRecord {
                    commodity: 4,
                    nodes: vec![16, 0],
                },
            ],
        }
    }

    #[test]
    fn round_trips_bit_exactly() {
        let state = sample();
        let bytes = state.to_bytes();
        let back = SolverState::from_bytes(&bytes).unwrap();
        assert_eq!(state, back);
        // And a minimal state (epoch only) round-trips too.
        let minimal = SolverState {
            hour: 0,
            n_nodes: 3,
            n_items: 1,
            n_edges: 2,
            n_requests: 1,
            ..SolverState::default()
        };
        let back = SolverState::from_bytes(&minimal.to_bytes()).unwrap();
        assert_eq!(minimal, back);
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let bytes = sample().to_bytes();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                match SolverState::from_bytes(&corrupt) {
                    Err(_) => {}
                    // A flip inside the 20-byte header length/checksum or
                    // the payload must never decode to the original.
                    Ok(state) => assert_ne!(
                        state,
                        sample(),
                        "bit flip at byte {byte} bit {bit} went unnoticed"
                    ),
                }
            }
        }
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let bytes = sample().to_bytes();
        for len in 0..bytes.len() {
            let err = SolverState::from_bytes(&bytes[..len])
                .expect_err("truncated snapshot must not decode");
            assert!(
                matches!(
                    err,
                    StateError::Truncated
                        | StateError::BadMagic
                        | StateError::ChecksumMismatch { .. }
                ),
                "unexpected error at len {len}: {err}"
            );
        }
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            SolverState::from_bytes(&bytes),
            Err(StateError::BadMagic)
        ));
        let mut bytes = sample().to_bytes();
        bytes[8] = 99;
        assert!(matches!(
            SolverState::from_bytes(&bytes),
            Err(StateError::BadVersion(_))
        ));
    }

    #[test]
    fn unknown_sections_are_skipped() {
        let state = sample();
        let bytes = state.to_bytes();
        // Re-frame with an extra unknown section appended to the payload.
        let mut payload = bytes[28..].to_vec();
        put_u32(&mut payload, 0xDEAD);
        put_u64(&mut payload, 3);
        payload.extend_from_slice(&[9, 9, 9]);
        let mut framed = Vec::new();
        framed.extend_from_slice(&MAGIC);
        put_u32(&mut framed, VERSION);
        put_u64(&mut framed, payload.len() as u64);
        put_u64(&mut framed, fnv1a(&payload));
        framed.extend_from_slice(&payload);
        let back = SolverState::from_bytes(&framed).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // A COLUMNS section claiming u64::MAX entries in a tiny body must
        // fail as malformed, not attempt the allocation.
        let mut payload = Vec::new();
        section(&mut payload, TAG_EPOCH, |b| {
            put_u64(b, 0);
            put_u32(b, 1);
            put_u32(b, 1);
            put_u32(b, 1);
            put_u32(b, 1);
        });
        put_u32(&mut payload, TAG_COLUMNS);
        put_u64(&mut payload, 8);
        put_u64(&mut payload, u64::MAX);
        let mut framed = Vec::new();
        framed.extend_from_slice(&MAGIC);
        put_u32(&mut framed, VERSION);
        put_u64(&mut framed, payload.len() as u64);
        put_u64(&mut framed, fnv1a(&payload));
        framed.extend_from_slice(&payload);
        assert!(matches!(
            SolverState::from_bytes(&framed),
            Err(StateError::Malformed(_)) | Err(StateError::Truncated)
        ));
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("jcr_state_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.bin");
        let state = sample();
        state.save(&path).unwrap();
        let back = SolverState::load(&path).unwrap();
        assert_eq!(state, back);
        std::fs::remove_file(&path).ok();
        let missing = SolverState::load(&dir.join("missing.bin"));
        assert!(matches!(missing, Err(StateError::Io(_))));
    }

    #[test]
    fn debug_json_mentions_every_component() {
        let json = sample().to_debug_json();
        for needle in [
            "\"hour\": 7",
            "\"placement\"",
            "\"routing\"",
            "\"basis_bytes\": 11",
            "\"columns\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }
}
