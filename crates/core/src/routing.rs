//! Routing `(r, f)` — per-request path flows — and solution metrics.

use jcr_flow::PathFlow;
use jcr_graph::Path;

use crate::instance::Instance;
use crate::placement::Placement;
use crate::rnr;

/// A routing decision: for every request, the response paths (from the
/// selected source(s) to the requester) and the rate carried on each.
///
/// Integral routing has exactly one path per request carrying its full
/// rate; fractional routing may split a request across paths.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Routing {
    /// `per_request[r]` — path flows serving request `r` (amounts in rate
    /// units, summing to the request's rate when fully served).
    pub per_request: Vec<Vec<PathFlow>>,
}

impl Routing {
    /// Single-path routing from a list of paths (one per request).
    pub fn from_paths(inst: &Instance, paths: Vec<Path>) -> Self {
        assert_eq!(paths.len(), inst.requests.len(), "one path per request");
        Routing {
            per_request: paths
                .into_iter()
                .zip(&inst.requests)
                .map(|(path, r)| {
                    vec![PathFlow {
                        path,
                        amount: r.rate,
                    }]
                })
                .collect(),
        }
    }

    /// Total routing cost `Σ λ_p · cost(p)` — objective (1a).
    pub fn cost(&self, inst: &Instance) -> f64 {
        self.per_request
            .iter()
            .flatten()
            .map(|pf| pf.amount * pf.path.cost(&inst.link_cost))
            .sum()
    }

    /// Load on each link.
    pub fn link_loads(&self, inst: &Instance) -> Vec<f64> {
        let mut loads = vec![0.0; inst.graph.edge_count()];
        for pf in self.per_request.iter().flatten() {
            for e in pf.path.edges() {
                loads[e.index()] += pf.amount;
            }
        }
        loads
    }

    /// Maximum load-to-capacity ratio over finite-capacity links — the
    /// paper's congestion metric. Zero when all links are uncapacitated.
    pub fn congestion(&self, inst: &Instance) -> f64 {
        self.link_loads(inst)
            .iter()
            .zip(&inst.link_cap)
            .filter(|(_, c)| c.is_finite() && **c > 0.0)
            .map(|(l, c)| l / c)
            .fold(0.0, f64::max)
    }

    /// Whether every request is fully served (amounts sum to the rate).
    pub fn serves_all(&self, inst: &Instance) -> bool {
        self.per_request.len() == inst.requests.len()
            && self
                .per_request
                .iter()
                .zip(&inst.requests)
                .all(|(flows, r)| {
                    let served: f64 = flows.iter().map(|f| f.amount).sum();
                    (served - r.rate).abs() <= 1e-6 * r.rate.max(1.0)
                })
    }

    /// Whether each request uses a single path (integral routing).
    pub fn is_integral(&self) -> bool {
        self.per_request.iter().all(|flows| flows.len() <= 1)
    }

    /// Whether every path's first node stores the requested item under
    /// `placement` (constraint (1e): selected sources must hold the
    /// content; the origin always does).
    pub fn sources_valid(&self, inst: &Instance, placement: &Placement) -> bool {
        self.per_request
            .iter()
            .zip(&inst.requests)
            .all(|(flows, r)| {
                flows.iter().all(|pf| match pf.path.source(&inst.graph) {
                    Some(src) => placement.has_with_origin(inst, src, r.item),
                    // An empty path means the requester itself is the source.
                    None => placement.has_with_origin(inst, r.node, r.item),
                })
            })
    }
}

/// A joint caching and routing solution with its evaluation metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct Solution {
    /// The content placement `x`.
    pub placement: Placement,
    /// The routing `(r, f)`.
    pub routing: Routing,
}

impl Solution {
    /// Routing cost under the instance's demand.
    pub fn cost(&self, inst: &Instance) -> f64 {
        self.routing.cost(inst)
    }

    /// Congestion under the instance's demand.
    pub fn congestion(&self, inst: &Instance) -> f64 {
        self.routing.congestion(inst)
    }

    /// Re-evaluates the solution against *true* demand when the decisions
    /// were made on predicted demand: each request's path distribution is
    /// scaled to the true rate; requests the decision never anticipated
    /// (predicted rate 0 but true rate > 0) fall back to
    /// route-to-nearest-replica under the decided placement.
    ///
    /// `true_rates[r]` pairs with `decision_inst.requests[r]` (the same
    /// request types in the same order). Returns `(cost, congestion)`.
    pub fn evaluate_under(&self, decision_inst: &Instance, true_rates: &[f64]) -> (f64, f64) {
        assert_eq!(true_rates.len(), decision_inst.requests.len());
        let mut loads = vec![0.0; decision_inst.graph.edge_count()];
        let mut cost = 0.0;
        for (ri, req) in decision_inst.requests.iter().enumerate() {
            let truth = true_rates[ri];
            if truth <= 0.0 {
                continue;
            }
            let flows = &self.routing.per_request[ri];
            let decided: f64 = flows.iter().map(|f| f.amount).sum();
            if decided > 1e-12 {
                for pf in flows {
                    let amount = truth * pf.amount / decided;
                    cost += amount * pf.path.cost(&decision_inst.link_cost);
                    for e in pf.path.edges() {
                        loads[e.index()] += amount;
                    }
                }
            } else {
                // Unanticipated demand: nearest replica under the placement.
                if let Some(path) =
                    rnr::nearest_replica_path(decision_inst, &self.placement, req.item, req.node)
                {
                    cost += truth * path.cost(&decision_inst.link_cost);
                    for e in path.edges() {
                        loads[e.index()] += truth;
                    }
                }
            }
        }
        let congestion = loads
            .iter()
            .zip(&decision_inst.link_cap)
            .filter(|(_, c)| c.is_finite() && **c > 0.0)
            .map(|(l, c)| l / c)
            .fold(0.0, f64::max);
        (cost, congestion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use jcr_topo::{Topology, TopologyKind};

    fn inst() -> Instance {
        InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, 4).unwrap())
            .items(3)
            .cache_capacity(1.0)
            .zipf_demand(1.0, 100.0, 5)
            .build()
            .unwrap()
    }

    fn origin_paths(inst: &Instance) -> Vec<Path> {
        let o = inst.origin.unwrap();
        inst.requests
            .iter()
            .map(|r| inst.all_pairs().path(o, r.node).unwrap())
            .collect()
    }

    #[test]
    fn origin_routing_metrics() {
        let inst = inst();
        let routing = Routing::from_paths(&inst, origin_paths(&inst));
        assert!(routing.serves_all(&inst));
        assert!(routing.is_integral());
        assert!(routing.cost(&inst) > 0.0);
        // Uncapacitated instance: congestion is zero by definition.
        assert_eq!(routing.congestion(&inst), 0.0);
        let placement = Placement::empty(&inst);
        assert!(routing.sources_valid(&inst, &placement));
    }

    #[test]
    fn loads_accumulate_on_shared_links() {
        let inst = inst();
        let routing = Routing::from_paths(&inst, origin_paths(&inst));
        let loads = routing.link_loads(&inst);
        // The origin's single outgoing link carries everything.
        let o = inst.origin.unwrap();
        let out = inst.graph.out_edges(o)[0];
        assert!((loads[out.index()] - inst.total_rate()).abs() < 1e-6);
    }

    #[test]
    fn evaluate_under_scales_to_true_demand() {
        let inst = inst();
        let routing = Routing::from_paths(&inst, origin_paths(&inst));
        let placement = Placement::empty(&inst);
        let sol = Solution { placement, routing };
        let decided_cost = sol.cost(&inst);
        // Doubling every rate doubles cost.
        let double: Vec<f64> = inst.requests.iter().map(|r| 2.0 * r.rate).collect();
        let (cost, _) = sol.evaluate_under(&inst, &double);
        assert!((cost - 2.0 * decided_cost).abs() < 1e-6 * decided_cost);
    }

    #[test]
    fn unanticipated_demand_falls_back_to_nearest_replica() {
        // A request the decision never routed (empty flow list) must be
        // served via RNR under the decided placement when true demand
        // materializes.
        let inst = inst();
        let mut routing = Routing::from_paths(&inst, origin_paths(&inst));
        routing.per_request[0] = Vec::new(); // decision anticipated nothing
        let mut placement = Placement::empty(&inst);
        // Cache the item at the requester: the fallback should cost 0.
        let req = inst.requests[0];
        placement.set(req.node, req.item, true);
        let sol = Solution { placement, routing };
        let truth: Vec<f64> = inst.requests.iter().map(|r| r.rate).collect();
        let (cost_with_cache, _) = sol.evaluate_under(&inst, &truth);
        // Same but without the cache: fallback goes to the origin, which
        // costs strictly more.
        let mut routing2 = Routing::from_paths(&inst, origin_paths(&inst));
        routing2.per_request[0] = Vec::new();
        let sol2 = Solution {
            placement: Placement::empty(&inst),
            routing: routing2,
        };
        let (cost_without_cache, _) = sol2.evaluate_under(&inst, &truth);
        assert!(cost_with_cache < cost_without_cache);
    }

    #[test]
    fn zero_true_rate_contributes_nothing() {
        let inst = inst();
        let routing = Routing::from_paths(&inst, origin_paths(&inst));
        let sol = Solution {
            placement: Placement::empty(&inst),
            routing,
        };
        let mut truth: Vec<f64> = inst.requests.iter().map(|r| r.rate).collect();
        let full = sol.evaluate_under(&inst, &truth).0;
        let removed =
            inst.requests[0].rate * sol.routing.per_request[0][0].path.cost(&inst.link_cost);
        truth[0] = 0.0;
        let reduced = sol.evaluate_under(&inst, &truth).0;
        assert!((full - reduced - removed).abs() < 1e-6);
    }

    #[test]
    fn fractional_routing_detected() {
        let inst = inst();
        let mut routing = Routing::from_paths(&inst, origin_paths(&inst));
        assert!(routing.is_integral());
        // Split the first request across two copies of its path.
        let pf = routing.per_request[0][0].clone();
        routing.per_request[0] = vec![
            jcr_flow::PathFlow {
                path: pf.path.clone(),
                amount: pf.amount / 2.0,
            },
            jcr_flow::PathFlow {
                path: pf.path,
                amount: pf.amount / 2.0,
            },
        ];
        assert!(!routing.is_integral());
        assert!(routing.serves_all(&inst));
    }

    #[test]
    fn under_serving_detected() {
        let inst = inst();
        let mut routing = Routing::from_paths(&inst, origin_paths(&inst));
        routing.per_request[0][0].amount *= 0.5;
        assert!(!routing.serves_all(&inst));
    }

    #[test]
    fn invalid_source_detected() {
        let inst = inst();
        // Route the first request from a non-storing edge node.
        let mut paths = origin_paths(&inst);
        let wrong_src = inst.cache_nodes()[0];
        if let Some(p) = inst.all_pairs().path(wrong_src, inst.requests[0].node) {
            if !p.is_empty() {
                paths[0] = p;
                let routing = Routing::from_paths(&inst, paths);
                let placement = Placement::empty(&inst);
                assert!(!routing.sources_valid(&inst, &placement));
            }
        }
    }
}
