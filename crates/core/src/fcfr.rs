//! Fractional caching + fractional routing (FC-FR): the one
//! polynomial-time case of the complexity matrix (Fig. 1).
//!
//! Two solvers are provided:
//!
//! * [`solve_fcfr`] builds the LP (1) in full — `O(|R||E|)` flow variables
//!   and `O(|R||V|)` conservation rows — exact but only practical on
//!   moderate instances;
//! * [`solve_fcfr_cg`] solves the same LP by **column generation** over
//!   source-anchored paths: the master holds the placement variables `x`,
//!   link-capacity rows, per-request demand rows, and the linking rows
//!   `Σ_{p from v} f_p ≤ λ_{(i,s)} x_{vi}` (constraint (1e)); pricing runs
//!   one Dijkstra per potential source under reduced costs. This scales to
//!   the paper's full evaluation setting.

use jcr_ctx::{Counter, Phase, SolverContext};
use jcr_graph::shortest;
use jcr_lp::{Model, Sense, VarId};

use crate::error::JcrError;
use crate::instance::Instance;

/// Result of the exact FC-FR LP.
#[derive(Clone, Debug)]
pub struct FcfrSolution {
    /// The optimal objective (1a): a lower bound on every other case's
    /// cost (IC-FR, IC-IR).
    pub cost: f64,
    /// Fractional placement `x[cache-node position][item]` (cache nodes in
    /// [`Instance::cache_nodes`] order).
    pub x: Vec<Vec<f64>>,
}

/// Solves optimization (1) under fractional caching and fractional
/// routing.
///
/// # Errors
///
/// [`JcrError::Infeasible`] when the demands cannot be met within link
/// capacities; LP failures are propagated.
pub fn solve_fcfr(inst: &Instance) -> Result<FcfrSolution, JcrError> {
    solve_fcfr_with_context(inst, &SolverContext::new())
}

/// [`solve_fcfr`] under an explicit [`SolverContext`]: the LP obeys the
/// context's simplex budget and records its statistics.
///
/// # Errors
///
/// Same as [`solve_fcfr`], plus [`JcrError::BudgetExceeded`] when the
/// budget trips.
pub fn solve_fcfr_with_context(
    inst: &Instance,
    ctx: &SolverContext,
) -> Result<FcfrSolution, JcrError> {
    let n_nodes = inst.graph.node_count();
    let n_edges = inst.graph.edge_count();
    let cache_nodes = inst.cache_nodes();
    let mut node_pos = vec![None; n_nodes];
    for (k, &v) in cache_nodes.iter().enumerate() {
        node_pos[v.index()] = Some(k);
    }

    let mut model = Model::new(Sense::Minimize);
    // x variables per (cache node, item).
    let x_var: Vec<Vec<VarId>> = cache_nodes
        .iter()
        .map(|_| {
            (0..inst.num_items())
                .map(|_| model.add_var(0.0, 1.0, 0.0))
                .collect()
        })
        .collect();
    // Flow variables per (request, edge) and source-selection variables
    // per (request, cache node / origin).
    let mut f_var: Vec<Vec<VarId>> = Vec::with_capacity(inst.requests.len());
    let mut r_var: Vec<Vec<VarId>> = Vec::with_capacity(inst.requests.len());
    let mut r_origin: Vec<Option<VarId>> = Vec::with_capacity(inst.requests.len());
    for req in &inst.requests {
        let f: Vec<VarId> = (0..n_edges)
            .map(|e| model.add_var(0.0, 1.0, req.rate * inst.link_cost[e]))
            .collect();
        let r: Vec<VarId> = cache_nodes
            .iter()
            .map(|_| model.add_var(0.0, 1.0, 0.0))
            .collect();
        let ro = inst.origin.map(|_| model.add_var(0.0, 1.0, 0.0));
        f_var.push(f);
        r_var.push(r);
        r_origin.push(ro);
    }

    // (1b) link capacities.
    for e in inst.graph.edges() {
        let cap = inst.link_cap[e.index()];
        if cap.is_finite() {
            let entries: Vec<_> = inst
                .requests
                .iter()
                .enumerate()
                .map(|(ri, req)| (f_var[ri][e.index()], req.rate))
                .collect();
            model.add_row(f64::NEG_INFINITY, cap, &entries);
        }
    }
    // (1c) flow conservation, (1d) sources sum to 1, (1e) r ≤ x.
    for (ri, req) in inst.requests.iter().enumerate() {
        for u in inst.graph.nodes() {
            let mut entries: Vec<(VarId, f64)> = Vec::new();
            for &e in inst.graph.out_edges(u) {
                entries.push((f_var[ri][e.index()], 1.0));
            }
            for &e in inst.graph.in_edges(u) {
                entries.push((f_var[ri][e.index()], -1.0));
            }
            if let Some(k) = node_pos[u.index()] {
                entries.push((r_var[ri][k], -1.0));
            }
            if Some(u) == inst.origin {
                if let Some(ro) = r_origin[ri] {
                    entries.push((ro, -1.0));
                }
            }
            let rhs = if u == req.node { -1.0 } else { 0.0 };
            model.add_row(rhs, rhs, &entries);
        }
        // (1d)
        let mut entries: Vec<(VarId, f64)> = r_var[ri].iter().map(|&v| (v, 1.0)).collect();
        if let Some(ro) = r_origin[ri] {
            entries.push((ro, 1.0));
        }
        model.add_row(1.0, 1.0, &entries);
        // (1e) r_v ≤ x_vi (origin's x ≡ 1 is its variable bound).
        for (k, _) in cache_nodes.iter().enumerate() {
            model.add_row(
                f64::NEG_INFINITY,
                0.0,
                &[(r_var[ri][k], 1.0), (x_var[k][req.item], -1.0)],
            );
        }
    }
    // (1f) / (16) cache capacities.
    for (k, &v) in cache_nodes.iter().enumerate() {
        let entries: Vec<_> = (0..inst.num_items())
            .map(|i| (x_var[k][i], inst.item_size[i]))
            .collect();
        model.add_row(f64::NEG_INFINITY, inst.cache_cap[v.index()], &entries);
    }

    let lp = model.solve_with_context(ctx)?;
    let x = x_var
        .iter()
        .map(|row| row.iter().map(|&v| lp.x[v.index()]).collect())
        .collect();
    Ok(FcfrSolution {
        cost: lp.objective,
        x,
    })
}

/// Solves FC-FR by column generation over source-anchored paths — same
/// optimum as [`solve_fcfr`], practical at the paper's full evaluation
/// scale.
///
/// # Errors
///
/// [`JcrError::Infeasible`] when the demands cannot be met within link
/// capacities; LP failures are propagated.
pub fn solve_fcfr_cg(inst: &Instance) -> Result<FcfrSolution, JcrError> {
    solve_fcfr_cg_with_context(inst, &SolverContext::new())
}

/// [`solve_fcfr_cg`] under an explicit [`SolverContext`]: the context's
/// deadline and `Phase::ColumnGeneration` iteration cap bound the pricing
/// loop, generated columns and Dijkstra runs are counted, and the master
/// LP solves inherit the context's simplex budget.
///
/// # Errors
///
/// Same as [`solve_fcfr_cg`], plus [`JcrError::BudgetExceeded`] when a
/// budget trips.
pub fn solve_fcfr_cg_with_context(
    inst: &Instance,
    ctx: &SolverContext,
) -> Result<FcfrSolution, JcrError> {
    let _t = ctx.time(Phase::ColumnGeneration);
    let cache_nodes = inst.cache_nodes();
    let n_items = inst.num_items();
    let graph = &inst.graph;
    let big = 1e3
        + 10.0
            * inst
                .link_cost
                .iter()
                .copied()
                .filter(|c| c.is_finite())
                .sum::<f64>()
            * graph.node_count() as f64;

    // --- master -----------------------------------------------------------
    let mut model = Model::new(Sense::Minimize);
    let x_var: Vec<Vec<VarId>> = cache_nodes
        .iter()
        .map(|_| (0..n_items).map(|_| model.add_var(0.0, 1.0, 0.0)).collect())
        .collect();
    let mut cap_row = vec![None; graph.edge_count()];
    for e in graph.edges() {
        let c = inst.link_cap[e.index()];
        if c.is_finite() {
            cap_row[e.index()] = Some(model.add_row(f64::NEG_INFINITY, c, &[]));
        }
    }
    let mut demand_rows = Vec::with_capacity(inst.requests.len());
    let mut link_rows: Vec<Vec<jcr_lp::ConId>> = Vec::with_capacity(inst.requests.len());
    for req in &inst.requests {
        demand_rows.push(model.add_row(req.rate, req.rate, &[]));
        // (1e): Σ_{p from v} f_p − λ x_{v,i} ≤ 0 per cache node.
        let rows = cache_nodes
            .iter()
            .enumerate()
            .map(|(vi, _)| {
                model.add_row(f64::NEG_INFINITY, 0.0, &[(x_var[vi][req.item], -req.rate)])
            })
            .collect();
        link_rows.push(rows);
    }
    for (vi, &v) in cache_nodes.iter().enumerate() {
        let entries: Vec<_> = (0..n_items)
            .map(|i| (x_var[vi][i], inst.item_size[i]))
            .collect();
        model.add_row(f64::NEG_INFINITY, inst.cache_cap[v.index()], &entries);
    }
    let mut artificials = Vec::with_capacity(inst.requests.len());
    for &row in &demand_rows {
        artificials.push(model.add_var_with_column(0.0, f64::INFINITY, big, &[(row, 1.0)]));
    }
    let mut solver = model.into_solver();

    // Sources: cache nodes (linked to x) plus the origin (free source).
    let mut sources: Vec<(jcr_graph::NodeId, Option<usize>)> =
        cache_nodes.iter().map(|&v| (v, Some(v.index()))).collect();
    if let Some(o) = inst.origin {
        sources.push((o, None));
    }
    let mut node_pos = vec![None; graph.node_count()];
    for (k, &v) in cache_nodes.iter().enumerate() {
        node_pos[v.index()] = Some(k);
    }

    let max_rounds = 40 * inst.requests.len() + 2000;
    let mut solution = solver.solve_with_context(ctx)?;
    for _round in 0..max_rounds {
        ctx.check(Phase::ColumnGeneration)?;
        let mut weights = vec![0.0; graph.edge_count()];
        for e in graph.edges() {
            let y = cap_row[e.index()]
                .map(|r| solution.duals[r.index()])
                .unwrap_or(0.0);
            weights[e.index()] = (inst.link_cost[e.index()] - y).max(0.0);
        }
        let mut added = false;
        for &(src, src_node) in &sources {
            let tree = shortest::dijkstra_with_context(graph, src, &weights, ctx);
            for (ri, req) in inst.requests.iter().enumerate() {
                let Some(path) = tree.path(req.node) else {
                    continue;
                };
                let sigma = solution.duals[demand_rows[ri].index()];
                let mu = match src_node {
                    Some(v) => {
                        let vi = node_pos[v].expect("cache node");
                        solution.duals[link_rows[ri][vi].index()]
                    }
                    None => 0.0,
                };
                let reduced = path.cost(&weights) - sigma - mu;
                if reduced < -1e-7 * (1.0 + sigma.abs() + mu.abs()) {
                    let mut column = vec![(demand_rows[ri], 1.0)];
                    if let Some(v) = src_node {
                        let vi = node_pos[v].expect("cache node");
                        column.push((link_rows[ri][vi], 1.0));
                    }
                    for e in path.edges() {
                        if let Some(r) = cap_row[e.index()] {
                            column.push((r, 1.0));
                        }
                    }
                    let obj = path.cost(&inst.link_cost);
                    solver.add_column(0.0, f64::INFINITY, obj, &column);
                    ctx.count(Counter::CgColumns, 1);
                    added = true;
                }
            }
        }
        if !added {
            break;
        }
        solution = solver.solve_with_context(ctx)?;
    }

    for &a in &artificials {
        if solution.x[a.index()] > 1e-6 {
            return Err(JcrError::Infeasible);
        }
    }
    let x = x_var
        .iter()
        .map(|row| row.iter().map(|&v| solution.x[v.index()]).collect())
        .collect();
    Ok(FcfrSolution {
        cost: solution.objective,
        x,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg1::Algorithm1;
    use crate::alternating::Alternating;
    use crate::instance::InstanceBuilder;
    use jcr_topo::Topology;

    fn small_inst(seed: u64, capped: bool) -> Instance {
        let b = InstanceBuilder::new(Topology::generate_custom(8, 10, 2, seed).unwrap())
            .items(4)
            .cache_capacity(1.0)
            .zipf_demand(0.9, 60.0, seed);
        if capped {
            b.link_capacity_fraction(0.2)
        } else {
            b
        }
        .build()
        .unwrap()
    }

    #[test]
    fn lower_bounds_alg1_uncapacitated() {
        for seed in 0..4 {
            let inst = small_inst(seed, false);
            let fcfr = solve_fcfr(&inst).unwrap();
            let ic_ir = Algorithm1::new().solve(&inst).unwrap().cost(&inst);
            assert!(
                fcfr.cost <= ic_ir + 1e-6,
                "seed {seed}: FC-FR {} must lower-bound IC-IR {ic_ir}",
                fcfr.cost
            );
        }
    }

    #[test]
    fn lower_bounds_alternating_capacitated() {
        let inst = small_inst(1, true);
        let fcfr = solve_fcfr(&inst).unwrap();
        let alt = Alternating::new().solve(&inst).unwrap();
        assert!(fcfr.cost <= alt.solution.cost(&inst) + 1e-6);
    }

    #[test]
    fn fractional_placement_within_capacity() {
        let inst = small_inst(2, true);
        let fcfr = solve_fcfr(&inst).unwrap();
        for (k, v) in inst.cache_nodes().iter().enumerate() {
            let mass: f64 = fcfr.x[k]
                .iter()
                .zip(&inst.item_size)
                .map(|(x, b)| x * b)
                .sum();
            assert!(mass <= inst.cache_cap[v.index()] + 1e-6);
        }
    }

    #[test]
    fn column_generation_matches_exact_lp() {
        for seed in 0..4 {
            let inst = small_inst(seed, true);
            let exact = solve_fcfr(&inst).unwrap();
            let cg = solve_fcfr_cg(&inst).unwrap();
            assert!(
                (exact.cost - cg.cost).abs() < 1e-4 * (1.0 + exact.cost),
                "seed {seed}: exact {} vs CG {}",
                exact.cost,
                cg.cost
            );
        }
        // Uncapacitated too.
        let inst = small_inst(1, false);
        let exact = solve_fcfr(&inst).unwrap();
        let cg = solve_fcfr_cg(&inst).unwrap();
        assert!((exact.cost - cg.cost).abs() < 1e-4 * (1.0 + exact.cost));
    }

    #[test]
    fn column_generation_placement_feasible() {
        let inst = small_inst(3, true);
        let cg = solve_fcfr_cg(&inst).unwrap();
        for (k, v) in inst.cache_nodes().iter().enumerate() {
            let mass: f64 = cg.x[k]
                .iter()
                .zip(&inst.item_size)
                .map(|(x, b)| x * b)
                .sum();
            assert!(mass <= inst.cache_cap[v.index()] + 1e-6);
        }
    }

    #[test]
    fn zero_cost_when_everything_fits() {
        // Cache capacity ≥ catalog: FC-FR caches everything everywhere.
        let inst = InstanceBuilder::new(Topology::generate_custom(8, 10, 2, 3).unwrap())
            .items(2)
            .cache_capacity(2.0)
            .zipf_demand(0.9, 60.0, 3)
            .build()
            .unwrap();
        let fcfr = solve_fcfr(&inst).unwrap();
        assert!(fcfr.cost.abs() < 1e-6);
    }
}
