//! The problem model: network, catalog, caches, and demand.

use std::sync::OnceLock;

use jcr_ctx::rng::SeedableRng;
use jcr_ctx::rng::StdRng;

use jcr_graph::{DiGraph, DistanceOracle, NodeId, Path};
use jcr_topo::Topology;

use crate::error::JcrError;

/// One request type `(i, s)`: node `node` requests item `item` at rate
/// `rate` (requests per unit time, or bits per unit time under
/// heterogeneous sizes — §5.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Request {
    /// Requested content item (index into the catalog).
    pub item: usize,
    /// Requesting node.
    pub node: NodeId,
    /// Arrival rate `λ_{(i,s)} > 0`.
    pub rate: f64,
}

/// A joint caching and routing instance — the data of optimization (1).
///
/// The optional `origin` node permanently stores the whole catalog at no
/// cache-capacity cost (the paper's origin server, §6); algorithms treat
/// it as an always-available source.
#[derive(Debug)]
pub struct Instance {
    /// The network.
    pub graph: DiGraph,
    /// Routing cost `w_uv ≥ 0` per directed edge.
    pub link_cost: Vec<f64>,
    /// Capacity `c_uv` per directed edge (`f64::INFINITY` = uncapacitated).
    pub link_cap: Vec<f64>,
    /// Cache capacity `c_v` per node, in item units (homogeneous sizes) or
    /// the same unit as `item_size` (heterogeneous).
    pub cache_cap: Vec<f64>,
    /// Item sizes `b_i` (all `1.0` for the homogeneous case).
    pub item_size: Vec<f64>,
    /// Request types with positive rate.
    pub requests: Vec<Request>,
    /// Origin server storing the entire catalog, if any.
    pub origin: Option<NodeId>,
    all_pairs: OnceLock<AllPairs>,
    /// Explicit dense-mode node threshold for the distance oracle
    /// (`None` = environment / library default). See
    /// [`Instance::with_oracle_dense_max`].
    oracle_dense_max: Option<usize>,
}

impl Clone for Instance {
    fn clone(&self) -> Self {
        Instance {
            graph: self.graph.clone(),
            link_cost: self.link_cost.clone(),
            link_cap: self.link_cap.clone(),
            cache_cap: self.cache_cap.clone(),
            item_size: self.item_size.clone(),
            requests: self.requests.clone(),
            origin: self.origin,
            all_pairs: OnceLock::new(),
            oracle_dense_max: self.oracle_dense_max,
        }
    }
}

/// Cached all-pairs shortest-path structure (`w_{v→s}` and the paths).
///
/// Backed by a [`DistanceOracle`]: paper-scale instances hold one flat
/// row-major distance/parent block, while instances past the oracle's
/// node threshold answer from an LRU row cache and never materialize the
/// |V|² matrix (see [`Instance::with_oracle_dense_max`]).
#[derive(Debug)]
pub struct AllPairs {
    oracle: DistanceOracle,
}

impl AllPairs {
    /// Least cost `w_{v→s}`; infinite if unreachable.
    pub fn dist(&self, v: NodeId, s: NodeId) -> f64 {
        self.oracle.dist(v, s)
    }

    /// A least-cost path `v → s`.
    pub fn path(&self, v: NodeId, s: NodeId) -> Option<Path> {
        self.oracle.path(v, s)
    }

    /// Maximum finite pairwise cost (computed lazily; on-demand oracles
    /// stream it without storing the full matrix).
    pub fn max_cost(&self) -> f64 {
        self.oracle.max_cost()
    }

    /// The backing oracle, for callers that want row handles
    /// ([`DistanceOracle::row`]) or bulk priming
    /// ([`DistanceOracle::prime_rows_with_context`]).
    pub fn oracle(&self) -> &DistanceOracle {
        &self.oracle
    }
}

impl Instance {
    /// Creates an instance from raw parts.
    ///
    /// # Errors
    ///
    /// [`JcrError::InvalidInstance`] on mismatched lengths, negative
    /// costs/rates/capacities, or out-of-range indices.
    pub fn new(
        graph: DiGraph,
        link_cost: Vec<f64>,
        link_cap: Vec<f64>,
        cache_cap: Vec<f64>,
        item_size: Vec<f64>,
        requests: Vec<Request>,
        origin: Option<NodeId>,
    ) -> Result<Self, JcrError> {
        let inst = Instance {
            graph,
            link_cost,
            link_cap,
            cache_cap,
            item_size,
            requests,
            origin,
            all_pairs: OnceLock::new(),
            oracle_dense_max: None,
        };
        inst.validate()?;
        Ok(inst)
    }

    /// Forces the distance oracle's dense-mode threshold for this
    /// instance: `0` means every row is computed on demand (no |V|²
    /// block), `usize::MAX` forces the dense block. Clears any cached
    /// all-pairs structure. Prefer this over the `JCR_ORACLE_DENSE_MAX`
    /// environment variable in tests that run in parallel.
    pub fn with_oracle_dense_max(mut self, dense_max: usize) -> Self {
        self.oracle_dense_max = Some(dense_max);
        self.all_pairs = OnceLock::new();
        self
    }

    fn validate(&self) -> Result<(), JcrError> {
        let err = |msg: String| Err(JcrError::InvalidInstance(msg));
        if self.link_cost.len() != self.graph.edge_count()
            || self.link_cap.len() != self.graph.edge_count()
        {
            return err("one cost and capacity per edge required".into());
        }
        if self.cache_cap.len() != self.graph.node_count() {
            return err("one cache capacity per node required".into());
        }
        if self.link_cost.iter().any(|c| c.is_nan() || *c < 0.0) {
            return err("link costs must be non-negative".into());
        }
        if self.link_cap.iter().any(|c| c.is_nan() || *c < 0.0) {
            return err("link capacities must be non-negative".into());
        }
        if self.cache_cap.iter().any(|c| c.is_nan() || *c < 0.0) {
            return err("cache capacities must be non-negative".into());
        }
        if self.item_size.iter().any(|b| b.is_nan() || *b <= 0.0) {
            return err("item sizes must be positive".into());
        }
        for r in &self.requests {
            if r.item >= self.item_size.len() {
                return err(format!("request references unknown item {}", r.item));
            }
            if r.node.index() >= self.graph.node_count() {
                return err(format!("request references unknown node {:?}", r.node));
            }
            if r.rate.is_nan() || r.rate <= 0.0 {
                return err(format!("request rate must be positive, got {}", r.rate));
            }
        }
        if let Some(o) = self.origin {
            if o.index() >= self.graph.node_count() {
                return err("origin node out of range".into());
            }
        }
        Ok(())
    }

    /// Number of catalog items.
    pub fn num_items(&self) -> usize {
        self.item_size.len()
    }

    /// Whether all items have unit (equal) size.
    pub fn homogeneous(&self) -> bool {
        self.item_size.iter().all(|&b| (b - 1.0).abs() < 1e-12)
    }

    /// Total request rate `Σ λ`.
    pub fn total_rate(&self) -> f64 {
        self.requests.iter().map(|r| r.rate).sum()
    }

    /// Nodes with positive cache capacity (excludes the origin, which
    /// stores everything implicitly).
    pub fn cache_nodes(&self) -> Vec<NodeId> {
        self.graph
            .nodes()
            .filter(|v| self.cache_cap[v.index()] > 0.0 && Some(*v) != self.origin)
            .collect()
    }

    /// All-pairs least costs (computed once, cached).
    pub fn all_pairs(&self) -> &AllPairs {
        self.all_pairs.get_or_init(|| self.compute_all_pairs(None))
    }

    /// [`Instance::all_pairs`], fanning the per-source Dijkstra runs out
    /// over `ctx.workers()` threads on first use and recording one
    /// Dijkstra call per source. The cached result is bit-identical to
    /// the serial computation for any worker count; subsequent calls
    /// return the cache without touching `ctx`.
    pub fn all_pairs_with_context(&self, ctx: &jcr_ctx::SolverContext) -> &AllPairs {
        self.all_pairs
            .get_or_init(|| self.compute_all_pairs(Some(ctx)))
    }

    /// Seeds this instance's all-pairs cache by carrying forward the rows
    /// of a previous instance's oracle that the per-edge delta
    /// certificate proves still exact
    /// ([`DistanceOracle::carry_with_config`]): only rows touched by the
    /// hour's cost delta (killed or restored links, changed weights) are
    /// recomputed, and a sampled Dijkstra re-verification gates the
    /// carry. Carried rows are bit-identical to freshly computed ones, so
    /// downstream answers do not depend on whether this method was
    /// called.
    ///
    /// Returns the carry report, or `None` if the cache was already
    /// initialized (in which case nothing changes).
    pub fn adopt_all_pairs_from(
        &self,
        prev: &DistanceOracle,
        ctx: &jcr_ctx::SolverContext,
    ) -> Option<jcr_graph::CarryReport> {
        if self.all_pairs.get().is_some() {
            return None;
        }
        let dense_max = self
            .oracle_dense_max
            .unwrap_or_else(jcr_graph::oracle::default_dense_max);
        let row_capacity = jcr_graph::oracle::default_row_capacity();
        let mut report = None;
        self.all_pairs.get_or_init(|| {
            let (oracle, r) = DistanceOracle::carry_with_config(
                prev,
                &self.graph,
                &self.link_cost,
                dense_max,
                row_capacity,
                jcr_graph::oracle::DEFAULT_CARRY_VERIFY_SAMPLES,
                Some(ctx),
            );
            report = Some(r);
            AllPairs { oracle }
        });
        report
    }

    /// A resident-row clone of this instance's oracle, if the all-pairs
    /// cache has been computed — the handle an hourly driver stores so
    /// the *next* hour's instance can [`Instance::adopt_all_pairs_from`]
    /// it. `None` when no solve has touched the cache yet.
    pub fn cloned_oracle(&self) -> Option<DistanceOracle> {
        self.all_pairs.get().map(|ap| ap.oracle().clone_resident())
    }

    fn compute_all_pairs(&self, ctx: Option<&jcr_ctx::SolverContext>) -> AllPairs {
        let serial_ctx;
        let ctx = match ctx {
            Some(ctx) => ctx,
            None => {
                serial_ctx = jcr_ctx::SolverContext::new().with_workers(1);
                &serial_ctx
            }
        };
        let dense_max = self
            .oracle_dense_max
            .unwrap_or_else(jcr_graph::oracle::default_dense_max);
        let row_capacity = jcr_graph::oracle::default_row_capacity();
        let oracle = DistanceOracle::with_config(
            &self.graph,
            &self.link_cost,
            dense_max,
            row_capacity,
            Some(ctx),
        );
        AllPairs { oracle }
    }

    /// The upper bound `w_max` on pairwise least costs used by Algorithm 1
    /// (strictly above every finite pairwise cost).
    pub fn w_max(&self) -> f64 {
        self.all_pairs().max_cost() * (1.0 + 1e-6) + 1.0
    }

    /// Whether every request can reach a node storing its item — at
    /// minimum the origin — so the instance is servable at all.
    pub fn origin_reaches_all(&self) -> bool {
        match self.origin {
            None => false,
            Some(o) => self
                .requests
                .iter()
                .all(|r| self.all_pairs().dist(o, r.node).is_finite()),
        }
    }
}

/// Builds the paper's edge-caching instance from a [`Topology`]: caches of
/// capacity ζ at the edge nodes, demand placed at the edge nodes, and the
/// origin storing everything.
///
/// # Examples
///
/// ```
/// use jcr_core::instance::InstanceBuilder;
/// use jcr_topo::{Topology, TopologyKind};
///
/// let topo = Topology::generate(TopologyKind::Abovenet, 1).unwrap();
/// let inst = InstanceBuilder::new(topo)
///     .items(10)
///     .cache_capacity(2.0)
///     .zipf_demand(0.8, 1000.0, 7)
///     .link_capacity_fraction(0.007)
///     .build()
///     .unwrap();
/// assert_eq!(inst.num_items(), 10);
/// assert!(inst.origin_reaches_all());
/// ```
#[derive(Clone, Debug)]
pub struct InstanceBuilder {
    topo: Topology,
    n_items: usize,
    item_size: Option<Vec<f64>>,
    cache_capacity: f64,
    /// rates[item][edge-node index]
    demand: DemandSpec,
    capacity: CapacitySpec,
}

#[derive(Clone, Debug)]
enum DemandSpec {
    Zipf { alpha: f64, total: f64, seed: u64 },
    Matrix(Vec<Vec<f64>>),
}

#[derive(Clone, Debug)]
enum CapacitySpec {
    Unlimited,
    Fraction(f64),
    Uniform(f64),
}

impl InstanceBuilder {
    /// Starts a builder over the given topology.
    pub fn new(topo: Topology) -> Self {
        InstanceBuilder {
            topo,
            n_items: 10,
            item_size: None,
            cache_capacity: 2.0,
            demand: DemandSpec::Zipf {
                alpha: 0.8,
                total: 1000.0,
                seed: 0,
            },
            capacity: CapacitySpec::Unlimited,
        }
    }

    /// Sets the catalog size (default 10, the paper's file-level default).
    pub fn items(mut self, n: usize) -> Self {
        self.n_items = n;
        self
    }

    /// Sets heterogeneous item sizes (same length as the catalog);
    /// omitting this keeps unit sizes.
    pub fn item_sizes(mut self, sizes: Vec<f64>) -> Self {
        self.n_items = sizes.len();
        self.item_size = Some(sizes);
        self
    }

    /// Sets the per-edge-node cache capacity ζ (default 2, the paper's
    /// file-level default; 12 for chunk level).
    pub fn cache_capacity(mut self, zeta: f64) -> Self {
        self.cache_capacity = zeta;
        self
    }

    /// Zipf demand: item popularity `∝ 1/rank^alpha`, total rate spread
    /// across edge nodes with seeded random shares.
    pub fn zipf_demand(mut self, alpha: f64, total_rate: f64, seed: u64) -> Self {
        self.demand = DemandSpec::Zipf {
            alpha,
            total: total_rate,
            seed,
        };
        self
    }

    /// Explicit demand matrix `rates[item][edge-node position]` (in the
    /// order of the topology's `edge_nodes`).
    pub fn demand_matrix(mut self, rates: Vec<Vec<f64>>) -> Self {
        self.demand = DemandSpec::Matrix(rates);
        self
    }

    /// Unlimited link capacities (§4.1's special case; the default).
    pub fn unlimited_links(mut self) -> Self {
        self.capacity = CapacitySpec::Unlimited;
        self
    }

    /// Uniform link capacity κ = `fraction` × total request rate, plus the
    /// paper's feasibility augmentation along origin→edge paths (§6;
    /// default fraction 0.007).
    pub fn link_capacity_fraction(mut self, fraction: f64) -> Self {
        self.capacity = CapacitySpec::Fraction(fraction);
        self
    }

    /// Uniform link capacity κ in absolute units, plus the feasibility
    /// augmentation.
    pub fn link_capacity(mut self, kappa: f64) -> Self {
        self.capacity = CapacitySpec::Uniform(kappa);
        self
    }

    /// Builds the instance.
    ///
    /// # Errors
    ///
    /// [`JcrError::InvalidInstance`] if the demand matrix shape mismatches
    /// the topology/catalog or any parameter is out of range.
    pub fn build(self) -> Result<Instance, JcrError> {
        let mut topo = self.topo;
        let n_edges = topo.edge_nodes.len();
        let rates: Vec<Vec<f64>> = match &self.demand {
            DemandSpec::Zipf { alpha, total, seed } => {
                let mut rng = StdRng::seed_from_u64(*seed ^ 0x6465_6d61_6e64);
                jcr_trace::zipf::zipf_demand(self.n_items, n_edges, *alpha, *total, &mut rng)
            }
            DemandSpec::Matrix(m) => {
                if m.len() != self.n_items || m.iter().any(|row| row.len() != n_edges) {
                    return Err(JcrError::InvalidInstance(format!(
                        "demand matrix must be {} × {n_edges}",
                        self.n_items
                    )));
                }
                m.clone()
            }
        };
        let item_size = self
            .item_size
            .clone()
            .unwrap_or_else(|| vec![1.0; self.n_items]);

        // Demand-weighted per-edge-node totals (for augmentation), where
        // each request transfers `item_size` units per arrival.
        let mut per_edge_total = vec![0.0; n_edges];
        let mut requests = Vec::new();
        for (i, row) in rates.iter().enumerate() {
            for (k, &rate) in row.iter().enumerate() {
                if rate > 0.0 {
                    requests.push(Request {
                        item: i,
                        node: topo.edge_nodes[k],
                        rate,
                    });
                    per_edge_total[k] += rate * item_size[i];
                }
            }
        }

        match self.capacity {
            CapacitySpec::Unlimited => {
                topo.capacity = vec![f64::INFINITY; topo.graph.edge_count()];
            }
            CapacitySpec::Fraction(fr) => {
                let total: f64 = per_edge_total.iter().sum();
                topo.set_uniform_capacity(fr * total);
                topo.augment_origin_paths(&per_edge_total)
                    .map_err(|e| JcrError::InvalidInstance(e.to_string()))?;
            }
            CapacitySpec::Uniform(kappa) => {
                topo.set_uniform_capacity(kappa);
                topo.augment_origin_paths(&per_edge_total)
                    .map_err(|e| JcrError::InvalidInstance(e.to_string()))?;
            }
        }

        let mut cache_cap = vec![0.0; topo.graph.node_count()];
        for &v in &topo.edge_nodes {
            cache_cap[v.index()] = self.cache_capacity;
        }

        Instance::new(
            topo.graph,
            topo.cost,
            topo.capacity,
            cache_cap,
            item_size,
            requests,
            Some(topo.origin),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcr_topo::TopologyKind;

    fn topo() -> Topology {
        Topology::generate(TopologyKind::Abovenet, 2).unwrap()
    }

    #[test]
    fn builder_defaults() {
        let inst = InstanceBuilder::new(topo()).build().unwrap();
        assert_eq!(inst.num_items(), 10);
        assert!(inst.homogeneous());
        assert!(inst.total_rate() > 0.0);
        assert_eq!(inst.cache_nodes().len(), jcr_topo::DEFAULT_EDGE_NODES);
        assert!(inst.link_cap.iter().all(|c| c.is_infinite()));
        assert!(inst.origin_reaches_all());
    }

    #[test]
    fn capacity_fraction_augments_feasibility() {
        let inst = InstanceBuilder::new(topo())
            .link_capacity_fraction(0.007)
            .build()
            .unwrap();
        // Every request must be servable from the origin within capacities:
        // the augmentation guarantees at least one path with enough room.
        assert!(inst.link_cap.iter().all(|c| c.is_finite()));
        let kappa = 0.007 * inst.total_rate();
        assert!(inst.link_cap.iter().any(|&c| c > kappa + 1e-9));
    }

    #[test]
    fn demand_matrix_shape_checked() {
        let t = topo();
        let bad = InstanceBuilder::new(t.clone())
            .items(3)
            .demand_matrix(vec![vec![1.0; 2]; 3])
            .build();
        assert!(matches!(bad, Err(JcrError::InvalidInstance(_))));
        let n_edges = t.edge_nodes.len();
        let good = InstanceBuilder::new(t)
            .items(2)
            .demand_matrix(vec![vec![1.0; n_edges]; 2])
            .build()
            .unwrap();
        assert_eq!(good.requests.len(), 2 * n_edges);
    }

    #[test]
    fn zero_rate_requests_dropped() {
        let t = topo();
        let n_edges = t.edge_nodes.len();
        let mut m = vec![vec![1.0; n_edges]; 2];
        m[0][0] = 0.0;
        let inst = InstanceBuilder::new(t)
            .items(2)
            .demand_matrix(m)
            .build()
            .unwrap();
        assert_eq!(inst.requests.len(), 2 * n_edges - 1);
    }

    #[test]
    fn heterogeneous_sizes() {
        let inst = InstanceBuilder::new(topo())
            .item_sizes(vec![4.5, 1.5, 3.0])
            .cache_capacity(6.0)
            .build()
            .unwrap();
        assert!(!inst.homogeneous());
        assert_eq!(inst.num_items(), 3);
    }

    #[test]
    fn validation_rejects_bad_rates() {
        let t = topo();
        let r = Instance::new(
            t.graph.clone(),
            t.cost.clone(),
            t.capacity.clone(),
            vec![0.0; t.graph.node_count()],
            vec![1.0],
            vec![Request {
                item: 0,
                node: t.edge_nodes[0],
                rate: -1.0,
            }],
            Some(t.origin),
        );
        assert!(matches!(r, Err(JcrError::InvalidInstance(_))));
    }

    #[test]
    fn all_pairs_distances_sane() {
        let inst = InstanceBuilder::new(topo()).build().unwrap();
        let ap = inst.all_pairs();
        let o = inst.origin.unwrap();
        for r in &inst.requests {
            let d = ap.dist(o, r.node);
            assert!(d.is_finite() && d >= 100.0, "origin link cost dominates");
        }
        assert!(inst.w_max() > ap.max_cost());
    }
}
