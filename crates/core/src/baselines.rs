//! The state-of-the-art baselines evaluated in §6:
//!
//! * **\[3\] (Ioannidis & Yeh)** — joint caching and routing restricted to a
//!   set of *candidate paths* (the `k` shortest origin→requester paths,
//!   the paper's recommended construction), ignoring link capacities.
//!   Evaluated as `k shortest paths` (routing on the chosen candidate),
//!   `SP + RNR` (`k = 1`, then re-routed to the nearest replica), and
//!   `k-SP + RNR`.
//! * **\[38\]** — content placement along fixed shortest paths to the origin
//!   (`shortest path` / `SP`).
//!
//! Both baselines pre-determine their candidate paths from the origin's
//! location, which is exactly why they underuse caches on arbitrary
//! topologies (the paper's headline comparison).

use jcr_graph::{shortest, Path};

use crate::error::JcrError;
use crate::instance::Instance;
use crate::placement::Placement;
use crate::placement_opt;
use crate::rnr;
use crate::routing::{Routing, Solution};

/// How a candidate-path baseline turns its placement into final routing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CandidateRouting {
    /// Serve along the chosen candidate path, truncated at the first
    /// storer (the uncapacitated evaluation of Fig. 5).
    OnPath,
    /// Re-route every request to its nearest replica (the `… + RNR`
    /// variants of Figs. 7–8).
    Rnr,
}

/// The candidate-path baseline of Ioannidis & Yeh \[3\].
#[derive(Clone, Copy, Debug)]
pub struct IoannidisYeh {
    /// Number of candidate (shortest origin→requester) paths per request;
    /// the paper's recommended default is 10.
    pub k: usize,
    /// Final routing mode.
    pub routing: CandidateRouting,
    /// Rounds of alternating placement ↔ candidate-path selection.
    pub refine_rounds: usize,
}

impl IoannidisYeh {
    /// The `k shortest paths` configuration of Fig. 5.
    pub fn k_shortest(k: usize) -> Self {
        IoannidisYeh {
            k,
            routing: CandidateRouting::OnPath,
            refine_rounds: 3,
        }
    }

    /// The `SP + RNR` configuration (single candidate path).
    pub fn sp_rnr() -> Self {
        IoannidisYeh {
            k: 1,
            routing: CandidateRouting::Rnr,
            refine_rounds: 1,
        }
    }

    /// The `k-SP + RNR` configuration.
    pub fn ksp_rnr(k: usize) -> Self {
        IoannidisYeh {
            k,
            routing: CandidateRouting::Rnr,
            refine_rounds: 3,
        }
    }

    /// Runs the baseline.
    ///
    /// # Errors
    ///
    /// [`JcrError::Infeasible`] if a requester is unreachable from the
    /// origin; LP failures are propagated.
    pub fn solve(&self, inst: &Instance) -> Result<Solution, JcrError> {
        self.solve_with_context(inst, &jcr_ctx::SolverContext::new())
    }

    /// [`IoannidisYeh::solve`] under an explicit
    /// [`jcr_ctx::SolverContext`]: the candidate-path Dijkstras are
    /// counted and the placement LPs obey the context's simplex budget.
    ///
    /// # Errors
    ///
    /// Same as [`IoannidisYeh::solve`], plus [`JcrError::BudgetExceeded`]
    /// when the budget trips.
    pub fn solve_with_context(
        &self,
        inst: &Instance,
        ctx: &jcr_ctx::SolverContext,
    ) -> Result<Solution, JcrError> {
        let origin = inst.origin.ok_or_else(|| {
            JcrError::InvalidInstance("candidate-path baselines need an origin".into())
        })?;
        // Candidate paths: k shortest origin→s per request (shared across
        // requests at the same node).
        let mut per_node_paths: Vec<Option<Vec<Path>>> = vec![None; inst.graph.node_count()];
        let mut candidates: Vec<Vec<Path>> = Vec::with_capacity(inst.requests.len());
        for r in &inst.requests {
            if per_node_paths[r.node.index()].is_none() {
                let paths = shortest::k_shortest_paths_with_context(
                    &inst.graph,
                    origin,
                    r.node,
                    self.k.max(1),
                    &inst.link_cost,
                    ctx,
                );
                if paths.is_empty() {
                    return Err(JcrError::Infeasible);
                }
                per_node_paths[r.node.index()] = Some(paths);
            }
            candidates.push(per_node_paths[r.node.index()].clone().expect("filled"));
        }

        // Alternate placement optimization and candidate-path selection.
        // The first round mirrors [3]'s joint relaxation, which spreads
        // routing mass over *all* candidates: the placement is optimized
        // against the uniform path mixture, so candidate paths beyond the
        // shortest genuinely influence it (and k matters).
        let mut chosen: Vec<usize> = vec![0; inst.requests.len()];
        let mut placement = Placement::empty(inst);
        for round in 0..self.refine_rounds.max(1) {
            if round == 0 && self.k > 1 {
                // Seed from the candidate mixture with lazy greedy: the
                // mixture multiplies the LP's size by the number of mixed
                // paths, while greedy handles it in near-linear time.
                let routing = routing_from_mixture(inst, &candidates);
                placement = crate::hetero::greedy_placement_given_routing(inst, &routing);
            } else {
                let routing = routing_from_chosen(inst, &candidates, &chosen);
                placement = placement_opt::optimize_placement_impl(
                    inst,
                    &routing,
                    !inst.homogeneous(),
                    ctx,
                )?;
            }
            // Re-select the candidate minimizing the truncated cost.
            let mut changed = false;
            for (ri, r) in inst.requests.iter().enumerate() {
                let best = (0..candidates[ri].len())
                    .min_by(|&a, &b| {
                        let ca = truncate_at_storer(inst, &candidates[ri][a], r.item, &placement)
                            .cost(&inst.link_cost);
                        let cb = truncate_at_storer(inst, &candidates[ri][b], r.item, &placement)
                            .cost(&inst.link_cost);
                        ca.partial_cmp(&cb).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("non-empty candidates");
                if best != chosen[ri] {
                    chosen[ri] = best;
                    changed = true;
                }
            }
            if !changed && round > 0 {
                break;
            }
        }

        let routing = match self.routing {
            CandidateRouting::OnPath => {
                let paths: Vec<Path> = inst
                    .requests
                    .iter()
                    .enumerate()
                    .map(|(ri, r)| {
                        truncate_at_storer(inst, &candidates[ri][chosen[ri]], r.item, &placement)
                    })
                    .collect();
                Routing::from_paths(inst, paths)
            }
            CandidateRouting::Rnr => {
                rnr::route_to_nearest_replica(inst, &placement).ok_or(JcrError::Infeasible)?
            }
        };
        Ok(Solution { placement, routing })
    }
}

/// The shortest-path placement baseline of \[38\] (`shortest path` / `SP`):
/// placement optimized against fixed shortest origin→requester paths,
/// served along those paths truncated at the first storer.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShortestPathPlacement;

impl ShortestPathPlacement {
    /// Runs the baseline.
    ///
    /// # Errors
    ///
    /// Same as [`IoannidisYeh::solve`].
    pub fn solve(&self, inst: &Instance) -> Result<Solution, JcrError> {
        IoannidisYeh {
            k: 1,
            routing: CandidateRouting::OnPath,
            refine_rounds: 1,
        }
        .solve(inst)
    }

    /// [`ShortestPathPlacement::solve`] under an explicit
    /// [`jcr_ctx::SolverContext`].
    ///
    /// # Errors
    ///
    /// Same as [`IoannidisYeh::solve_with_context`].
    pub fn solve_with_context(
        &self,
        inst: &Instance,
        ctx: &jcr_ctx::SolverContext,
    ) -> Result<Solution, JcrError> {
        IoannidisYeh {
            k: 1,
            routing: CandidateRouting::OnPath,
            refine_rounds: 1,
        }
        .solve_with_context(inst, ctx)
    }
}

/// Truncates a source→requester path at the storer closest to the
/// requester (the requester itself first; the path's source — typically
/// the origin — guarantees a fallback).
pub(crate) fn truncate_at_storer(
    inst: &Instance,
    path: &Path,
    item: usize,
    placement: &Placement,
) -> Path {
    let nodes = path.nodes(&inst.graph);
    if nodes.is_empty() {
        return path.clone();
    }
    let n = nodes.len();
    for j in (0..n).rev() {
        if placement.has_with_origin(inst, nodes[j], item) {
            return Path::new(path.edges()[j..].to_vec());
        }
    }
    path.clone()
}

/// The uniform fractional mixture over each request's candidate paths —
/// the routing the first placement round of [3]'s relaxation sees.
fn routing_from_mixture(inst: &Instance, candidates: &[Vec<Path>]) -> Routing {
    Routing {
        per_request: inst
            .requests
            .iter()
            .enumerate()
            .map(|(ri, r)| {
                let share = r.rate / candidates[ri].len() as f64;
                candidates[ri]
                    .iter()
                    .map(|p| jcr_flow::PathFlow {
                        path: p.clone(),
                        amount: share,
                    })
                    .collect()
            })
            .collect(),
    }
}

fn routing_from_chosen(inst: &Instance, candidates: &[Vec<Path>], chosen: &[usize]) -> Routing {
    Routing {
        per_request: inst
            .requests
            .iter()
            .enumerate()
            .map(|(ri, r)| {
                vec![jcr_flow::PathFlow {
                    path: candidates[ri][chosen[ri]].clone(),
                    amount: r.rate,
                }]
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg1::Algorithm1;
    use crate::instance::InstanceBuilder;
    use jcr_topo::{Topology, TopologyKind};

    fn inst(seed: u64) -> Instance {
        // Kept small: the k = 10 mixture LP is the slowest test in the
        // crate under the debug profile.
        InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, seed).unwrap())
            .items(6)
            .cache_capacity(2.0)
            .zipf_demand(0.8, 300.0, seed)
            .build()
            .unwrap()
    }

    #[test]
    fn sp_baseline_feasible_on_homogeneous() {
        let inst = inst(23);
        let sol = ShortestPathPlacement.solve(&inst).unwrap();
        assert!(sol.placement.is_feasible(&inst));
        assert!(sol.routing.serves_all(&inst));
        assert!(sol.routing.sources_valid(&inst, &sol.placement));
    }

    #[test]
    fn truncation_stops_at_requester_cache() {
        let inst = inst(24);
        let r = inst.requests[0];
        let origin = inst.origin.unwrap();
        let full = inst.all_pairs().path(origin, r.node).unwrap();
        let mut p = Placement::empty(&inst);
        p.set(r.node, r.item, true);
        let t = truncate_at_storer(&inst, &full, r.item, &p);
        assert!(t.is_empty(), "cached at requester → zero-hop response");
        let t2 = truncate_at_storer(&inst, &full, r.item, &Placement::empty(&inst));
        assert_eq!(t2, full, "nothing cached → full path from origin");
    }

    #[test]
    fn alg1_beats_candidate_baselines_on_cost() {
        // The paper's headline comparison (Fig. 5): Algorithm 1 optimizes
        // over all paths, the baselines only over origin-anchored ones.
        let mut alg1_wins = 0;
        let trials = 3;
        for seed in 40..40 + trials {
            let inst = inst(seed);
            let ours = Algorithm1::new().solve(&inst).unwrap().cost(&inst);
            let ksp = IoannidisYeh::k_shortest(10)
                .solve(&inst)
                .unwrap()
                .cost(&inst);
            let sp = ShortestPathPlacement.solve(&inst).unwrap().cost(&inst);
            assert!(ours <= ksp + 1e-6, "seed {seed}: ours {ours} > ksp {ksp}");
            if ours < ksp - 1e-6 && ours < sp - 1e-6 {
                alg1_wins += 1;
            }
        }
        assert!(
            alg1_wins >= trials / 2,
            "Algorithm 1 should usually win strictly"
        );
    }

    #[test]
    fn more_candidates_never_hurt() {
        let inst = inst(29);
        let c1 = IoannidisYeh::k_shortest(1)
            .solve(&inst)
            .unwrap()
            .cost(&inst);
        let c10 = IoannidisYeh::k_shortest(10)
            .solve(&inst)
            .unwrap()
            .cost(&inst);
        assert!(c10 <= c1 + 1e-6, "k=10 ({c10}) worse than k=1 ({c1})");
    }

    #[test]
    fn hetero_baselines_overflow_caches() {
        // Fig. 5, file level: the baselines' placements are infeasible
        // because their rounding ignores item sizes.
        let mut any_overflow = false;
        for seed in 60..64 {
            let inst =
                InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, seed).unwrap())
                    .item_sizes(vec![4.5, 6.1, 7.5, 3.9, 8.5, 4.3, 1.6, 7.1, 1.6, 3.1])
                    .cache_capacity(10.0)
                    .zipf_demand(0.8, 300.0, seed)
                    .build()
                    .unwrap();
            let sol = IoannidisYeh::k_shortest(10).solve(&inst).unwrap();
            if sol.placement.max_occupancy_ratio(&inst) > 1.0 + 1e-9 {
                any_overflow = true;
            }
        }
        assert!(
            any_overflow,
            "size-oblivious rounding should overflow somewhere"
        );
    }

    #[test]
    fn rnr_variants_route_to_nearest() {
        let inst = inst(31);
        let sol = IoannidisYeh::sp_rnr().solve(&inst).unwrap();
        // Every path must be a least-cost path from its source.
        let ap = inst.all_pairs();
        for (r, flows) in inst.requests.iter().zip(&sol.routing.per_request) {
            let pf = &flows[0];
            if let Some(src) = pf.path.source(&inst.graph) {
                assert!((pf.path.cost(&inst.link_cost) - ap.dist(src, r.node)).abs() < 1e-9);
            }
        }
    }
}
