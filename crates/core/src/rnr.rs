//! Route-to-nearest-replica (RNR): the optimal routing under unlimited
//! link capacities (§4.1).

use jcr_graph::{NodeId, Path};

use crate::instance::Instance;
use crate::placement::Placement;
use crate::routing::Routing;

/// The least-cost replica of item `i` for requester `s` under `placement`
/// (the origin counts), together with its cost.
pub fn nearest_replica(
    inst: &Instance,
    placement: &Placement,
    item: usize,
    s: NodeId,
) -> Option<(NodeId, f64)> {
    let ap = inst.all_pairs();
    let mut best: Option<(NodeId, f64)> = None;
    let consider = |v: NodeId, best: &mut Option<(NodeId, f64)>| {
        let d = ap.dist(v, s);
        if d.is_finite() && best.is_none_or(|(_, bd)| d < bd) {
            *best = Some((v, d));
        }
    };
    for v in placement.holders(item) {
        consider(v, &mut best);
    }
    if let Some(o) = inst.origin {
        consider(o, &mut best);
    }
    best
}

/// The least-cost path serving `(item, s)` under `placement`, if any
/// replica is reachable.
pub fn nearest_replica_path(
    inst: &Instance,
    placement: &Placement,
    item: usize,
    s: NodeId,
) -> Option<Path> {
    let (v, _) = nearest_replica(inst, placement, item, s)?;
    inst.all_pairs().path(v, s)
}

/// Routes every request to its nearest replica (single least-cost path).
///
/// Returns `None` if some request has no reachable replica (no origin and
/// nothing cached).
pub fn route_to_nearest_replica(inst: &Instance, placement: &Placement) -> Option<Routing> {
    let mut paths = Vec::with_capacity(inst.requests.len());
    for r in &inst.requests {
        paths.push(nearest_replica_path(inst, placement, r.item, r.node)?);
    }
    Some(Routing::from_paths(inst, paths))
}

/// The RNR routing cost of a placement — the objective `C_RNR` of (2)
/// restricted to nodes that actually store content.
pub fn rnr_cost(inst: &Instance, placement: &Placement) -> Option<f64> {
    let mut cost = 0.0;
    for r in &inst.requests {
        let (_, d) = nearest_replica(inst, placement, r.item, r.node)?;
        cost += r.rate * d;
    }
    Some(cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use jcr_topo::{Topology, TopologyKind};

    fn inst() -> Instance {
        InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, 9).unwrap())
            .items(4)
            .cache_capacity(2.0)
            .zipf_demand(0.8, 50.0, 3)
            .build()
            .unwrap()
    }

    #[test]
    fn empty_placement_serves_from_origin() {
        let inst = inst();
        let p = Placement::empty(&inst);
        let routing = route_to_nearest_replica(&inst, &p).unwrap();
        assert!(routing.serves_all(&inst));
        let o = inst.origin.unwrap();
        for flows in &routing.per_request {
            assert_eq!(flows[0].path.source(&inst.graph), Some(o));
        }
    }

    #[test]
    fn caching_at_requester_gives_zero_cost() {
        let inst = inst();
        let mut p = Placement::empty(&inst);
        // Store every item at every edge node (ignore capacity for the test).
        for v in inst.cache_nodes() {
            for i in 0..inst.num_items() {
                p.set(v, i, true);
            }
        }
        let cost = rnr_cost(&inst, &p).unwrap();
        assert!(
            cost.abs() < 1e-9,
            "local hits should cost nothing, got {cost}"
        );
    }

    #[test]
    fn caching_strictly_reduces_cost() {
        let inst = inst();
        let empty_cost = rnr_cost(&inst, &Placement::empty(&inst)).unwrap();
        let mut p = Placement::empty(&inst);
        let v = inst.cache_nodes()[0];
        p.set(v, 0, true);
        let cached_cost = rnr_cost(&inst, &p).unwrap();
        assert!(cached_cost < empty_cost);
    }

    #[test]
    fn rnr_matches_routing_cost() {
        let inst = inst();
        let mut p = Placement::empty(&inst);
        p.set(inst.cache_nodes()[1], 2, true);
        let routing = route_to_nearest_replica(&inst, &p).unwrap();
        let direct = rnr_cost(&inst, &p).unwrap();
        assert!((routing.cost(&inst) - direct).abs() < 1e-9);
        assert!(routing.sources_valid(&inst, &p));
    }

    #[test]
    fn no_origin_no_replica_fails() {
        let inst0 = inst();
        let inst = Instance::new(
            inst0.graph.clone(),
            inst0.link_cost.clone(),
            inst0.link_cap.clone(),
            inst0.cache_cap.clone(),
            inst0.item_size.clone(),
            inst0.requests.clone(),
            None,
        )
        .unwrap();
        let p = Placement::empty(&inst);
        assert!(route_to_nearest_replica(&inst, &p).is_none());
        assert!(rnr_cost(&inst, &p).is_none());
    }
}
