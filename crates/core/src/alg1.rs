//! **Algorithm 1** (§4.1): integral caching and source selection under
//! unlimited link capacities, with a `(1 − 1/e)` approximation guarantee
//! (Theorem 4.4) in truly polynomial time.
//!
//! The paper's auxiliary LP (7) has `O(|V||R|)` variables; we solve an
//! exactly equivalent reduced LP instead (see `DESIGN.md`): for fixed `x`
//! the inner maximum over `(r, z)` is available in closed form, collapsing
//! (7) to
//!
//! ```text
//!   max  Σ_{(i,s)} λ_{(i,s)} · w_max · z_{(i,s)}
//!   s.t. z_{(i,s)} ≤ 1
//!        z_{(i,s)} ≤ Σ_v x_{vi} (w_max − w_{v→s}) / w_max   (origin: x ≡ 1)
//!        Σ_i x_{vi} ≤ c_v,   x ∈ [0, 1]
//! ```
//!
//! with one auxiliary per request. An optimal fractional source selection
//! `r̃` is recovered by water-filling, the placement is rounded by the
//! pipage scheme (8)–(9) — which never decreases `F_RNR` (Lemma 4.3) —
//! and requests are finally routed to their nearest replicas (RNR).

use jcr_lp::{Model, Sense};

use crate::error::JcrError;
use crate::instance::Instance;
use crate::placement::Placement;
use crate::rnr;
use crate::routing::Solution;

/// Algorithm 1: LP relaxation + pipage rounding + RNR.
///
/// # Examples
///
/// ```
/// use jcr_core::alg1::Algorithm1;
/// use jcr_core::instance::InstanceBuilder;
/// use jcr_topo::{Topology, TopologyKind};
///
/// let topo = Topology::generate(TopologyKind::Abovenet, 1).unwrap();
/// let inst = InstanceBuilder::new(topo)
///     .items(6)
///     .cache_capacity(2.0)
///     .zipf_demand(0.8, 100.0, 3)
///     .build()
///     .unwrap();
/// let solution = Algorithm1::new().solve(&inst).unwrap();
/// assert!(solution.placement.is_feasible(&inst));
/// assert!(solution.routing.serves_all(&inst));
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Algorithm1 {
    _private: (),
}

impl Algorithm1 {
    /// Creates the solver.
    pub fn new() -> Self {
        Algorithm1::default()
    }

    /// Runs Algorithm 1 on an instance (link capacities are ignored, as in
    /// the paper's uncapacitated special case).
    ///
    /// # Errors
    ///
    /// [`JcrError::Infeasible`] if some request cannot reach any replica
    /// (requires an origin); LP errors are propagated as
    /// [`JcrError::Numerical`].
    pub fn solve(&self, inst: &Instance) -> Result<Solution, JcrError> {
        self.solve_with_context(inst, &jcr_ctx::SolverContext::new())
    }

    /// [`Algorithm1::solve`] under an explicit [`jcr_ctx::SolverContext`]:
    /// the reduced LP obeys the context's simplex budget and the pipage
    /// rounding feeds the rounding counter.
    ///
    /// # Errors
    ///
    /// Same as [`Algorithm1::solve`], plus [`JcrError::BudgetExceeded`]
    /// when the budget trips.
    pub fn solve_with_context(
        &self,
        inst: &Instance,
        ctx: &jcr_ctx::SolverContext,
    ) -> Result<Solution, JcrError> {
        self.solve_certified(inst, ctx).map(|(sol, _)| sol)
    }

    /// [`Algorithm1::solve_with_context`], additionally returning the
    /// independent [`Certificate`](jcr_ctx::cert::Certificate) the
    /// solution was verified against (link capacities are not enforced —
    /// this is the paper's uncapacitated case).
    ///
    /// # Errors
    ///
    /// Same as [`Algorithm1::solve_with_context`], plus
    /// [`JcrError::NumericalBreakdown`] when the certificate fails to
    /// verify.
    pub fn solve_certified(
        &self,
        inst: &Instance,
        ctx: &jcr_ctx::SolverContext,
    ) -> Result<(Solution, jcr_ctx::cert::Certificate), JcrError> {
        let placement = self.place_with_context(inst, ctx)?;
        let routing =
            rnr::route_to_nearest_replica(inst, &placement).ok_or(JcrError::Infeasible)?;
        let solution = Solution { placement, routing };
        let certificate = crate::certify::certify_solution(inst, &solution, false);
        certificate.record(ctx);
        if !certificate.verified() {
            return Err(JcrError::NumericalBreakdown(certificate.failure_summary()));
        }
        Ok((solution, certificate))
    }

    /// The content-placement part only (lines 1–3 of Algorithm 1).
    ///
    /// # Errors
    ///
    /// See [`Algorithm1::solve`].
    pub fn place(&self, inst: &Instance) -> Result<Placement, JcrError> {
        self.place_with_context(inst, &jcr_ctx::SolverContext::new())
    }

    /// [`Algorithm1::place`] under an explicit [`jcr_ctx::SolverContext`].
    ///
    /// # Errors
    ///
    /// Same as [`Algorithm1::solve_with_context`].
    pub fn place_with_context(
        &self,
        inst: &Instance,
        ctx: &jcr_ctx::SolverContext,
    ) -> Result<Placement, JcrError> {
        let _span = ctx.span("alg1.place");
        let cache_nodes = inst.cache_nodes();
        let n_items = inst.num_items();
        if cache_nodes.is_empty() || inst.requests.is_empty() {
            return Ok(Placement::empty(inst));
        }
        let ap = inst.all_pairs_with_context(ctx);
        let w_max = inst.w_max();

        // --- Reduced LP ---------------------------------------------------
        let mut model = Model::new(Sense::Maximize);
        // x variables, indexed [cache node][item].
        let x_var: Vec<Vec<jcr_lp::VarId>> = cache_nodes
            .iter()
            .map(|_| (0..n_items).map(|_| model.add_var(0.0, 1.0, 0.0)).collect())
            .collect();
        // z variables and their coverage rows.
        for req in &inst.requests {
            let z = model.add_var(0.0, 1.0, req.rate * w_max);
            // z − Σ_v a_v x_v ≤ a0.
            let mut entries = vec![(z, 1.0)];
            for (vi, &v) in cache_nodes.iter().enumerate() {
                let d = ap.dist(v, req.node);
                if d.is_finite() {
                    let a = (w_max - d) / w_max;
                    if a > 0.0 {
                        entries.push((x_var[vi][req.item], -a));
                    }
                }
            }
            let a0 = match inst.origin {
                Some(o) => {
                    let d = ap.dist(o, req.node);
                    if d.is_finite() {
                        (w_max - d) / w_max
                    } else {
                        0.0
                    }
                }
                None => 0.0,
            };
            model.add_row(f64::NEG_INFINITY, a0, &entries);
        }
        // Cache capacities.
        for (vi, &v) in cache_nodes.iter().enumerate() {
            let entries: Vec<_> = (0..n_items).map(|i| (x_var[vi][i], 1.0)).collect();
            model.add_row(f64::NEG_INFINITY, inst.cache_cap[v.index()], &entries);
        }
        let lp = {
            let _s = ctx.span("alg1.lp");
            model.solve_with_context(ctx)?
        };

        // --- Recover r̃ and the pipage weights -----------------------------
        // weight[vi][i] = Σ_{s:(i,s)∈R} λ · r̃_v^{(i,s)} · (w_max − w_{v→s}).
        let _weights_span = ctx.span("alg1.weights");
        let mut weight = vec![vec![0.0; n_items]; cache_nodes.len()];
        for req in &inst.requests {
            // a_v = x̃_vi (w_max − w_{v→s}) / w_max for cache nodes + origin.
            let mut a = Vec::with_capacity(cache_nodes.len());
            let mut total = 0.0;
            for (vi, &v) in cache_nodes.iter().enumerate() {
                let d = ap.dist(v, req.node);
                let av = if d.is_finite() {
                    lp.x[x_var[vi][req.item].index()] * ((w_max - d) / w_max).max(0.0)
                } else {
                    0.0
                };
                a.push(av);
                total += av;
            }
            if let Some(o) = inst.origin {
                let d = ap.dist(o, req.node);
                if d.is_finite() {
                    total += (w_max - d) / w_max;
                }
            }
            // Water-filling: r̃_v = a_v (scaled down if Σa > 1); leftover
            // mass goes to the origin and does not affect cache weights.
            let scale = if total > 1.0 { 1.0 / total } else { 1.0 };
            for (vi, &v) in cache_nodes.iter().enumerate() {
                let r_tilde = a[vi] * scale;
                if r_tilde > 0.0 {
                    let d = ap.dist(v, req.node);
                    weight[vi][req.item] += req.rate * r_tilde * (w_max - d);
                }
            }
        }

        drop(_weights_span);

        // --- Pipage rounding (8)–(9) ---------------------------------------
        // Flatten x into coordinates grouped by cache node.
        let mut coords = Vec::with_capacity(cache_nodes.len() * n_items);
        let mut groups: Vec<Vec<usize>> = Vec::with_capacity(cache_nodes.len());
        let mut flat_weight = Vec::with_capacity(cache_nodes.len() * n_items);
        for (vi, _) in cache_nodes.iter().enumerate() {
            let mut group = Vec::with_capacity(n_items);
            for i in 0..n_items {
                group.push(coords.len());
                coords.push(lp.x[x_var[vi][i].index()]);
                flat_weight.push(weight[vi][i]);
            }
            groups.push(group);
        }
        let capacity: Vec<f64> = cache_nodes
            .iter()
            .map(|&v| inst.cache_cap[v.index()].floor())
            .collect();
        {
            let _s = ctx.span("alg1.pipage");
            let _t = ctx.time(jcr_ctx::Phase::Rounding);
            ctx.count(jcr_ctx::Counter::RoundingPasses, 1);
            jcr_submodular::pipage::pipage_round(&mut coords, &groups, &capacity, |c, _| {
                flat_weight[c]
            });
        }

        let mut placement = Placement::empty(inst);
        for (vi, &v) in cache_nodes.iter().enumerate() {
            for i in 0..n_items {
                if coords[groups[vi][i]] >= 0.5 {
                    placement.set(v, i, true);
                }
            }
        }
        debug_assert!(placement.is_feasible(inst));
        Ok(placement)
    }
}

/// The cost-saving objective `F_RNR(x, r)` of (3) under RNR source
/// selection — used to validate the approximation guarantee in tests and
/// benchmarks: `F = Σ λ (w_max − w_{nearest replica})`.
pub fn f_rnr(inst: &Instance, placement: &Placement) -> f64 {
    let w_max = inst.w_max();
    inst.requests
        .iter()
        .map(|r| {
            let d = rnr::nearest_replica(inst, placement, r.item, r.node).map_or(w_max, |(_, d)| d);
            r.rate * (w_max - d)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{InstanceBuilder, Request};
    use jcr_graph::DiGraph;
    use jcr_topo::{Topology, TopologyKind};

    fn default_inst(seed: u64) -> Instance {
        InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, seed).unwrap())
            .items(8)
            .cache_capacity(2.0)
            .zipf_demand(0.8, 200.0, seed)
            .build()
            .unwrap()
    }

    #[test]
    fn produces_feasible_solution_beating_origin_only() {
        let inst = default_inst(3);
        let sol = Algorithm1::new().solve(&inst).unwrap();
        assert!(sol.placement.is_feasible(&inst));
        assert!(sol.routing.serves_all(&inst));
        assert!(sol.routing.sources_valid(&inst, &sol.placement));
        let origin_cost = rnr::rnr_cost(&inst, &Placement::empty(&inst)).unwrap();
        assert!(
            sol.cost(&inst) < origin_cost,
            "caching should beat origin-only: {} vs {origin_cost}",
            sol.cost(&inst)
        );
    }

    #[test]
    fn fills_caches_when_items_scarce() {
        // More capacity than items: every edge node should store the most
        // popular items up to the catalog size.
        let inst = InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, 5).unwrap())
            .items(2)
            .cache_capacity(5.0)
            .zipf_demand(1.0, 100.0, 1)
            .build()
            .unwrap();
        let sol = Algorithm1::new().solve(&inst).unwrap();
        // Every requested item is cached at the requester itself → zero cost.
        assert!(sol.cost(&inst) < 1e-6);
    }

    /// Brute-force optimal placement for tiny instances.
    fn brute_force_opt(inst: &Instance) -> f64 {
        let cache_nodes = inst.cache_nodes();
        let n_items = inst.num_items();
        let slots: Vec<(usize, usize)> = cache_nodes
            .iter()
            .enumerate()
            .flat_map(|(vi, _)| (0..n_items).map(move |i| (vi, i)))
            .collect();
        assert!(slots.len() <= 16);
        let mut best = f64::NEG_INFINITY;
        'mask: for mask in 0u32..(1 << slots.len()) {
            let mut p = Placement::empty(inst);
            let mut used = vec![0.0; cache_nodes.len()];
            for (b, &(vi, i)) in slots.iter().enumerate() {
                if mask & (1 << b) != 0 {
                    used[vi] += inst.item_size[i];
                    if used[vi] > inst.cache_cap[cache_nodes[vi].index()] + 1e-9 {
                        continue 'mask;
                    }
                    p.set(cache_nodes[vi], i, true);
                }
            }
            best = best.max(f_rnr(inst, &p));
        }
        best
    }

    #[test]
    fn achieves_1_minus_1_over_e_on_small_instances() {
        for seed in 0..6 {
            let inst = InstanceBuilder::new(Topology::generate_custom(8, 10, 2, seed).unwrap())
                .items(4)
                .cache_capacity(1.0)
                .zipf_demand(0.9, 60.0, seed)
                .build()
                .unwrap();
            let sol = Algorithm1::new().solve(&inst).unwrap();
            let achieved = f_rnr(&inst, &sol.placement);
            let opt = brute_force_opt(&inst);
            let bound = (1.0 - 1.0 / std::f64::consts::E) * opt;
            assert!(
                achieved >= bound - 1e-6,
                "seed {seed}: {achieved} < (1−1/e)·OPT = {bound}"
            );
        }
    }

    #[test]
    fn empty_catalog_or_requests() {
        let topo = Topology::generate(TopologyKind::Abovenet, 1).unwrap();
        let n_edges = topo.edge_nodes.len();
        let inst = InstanceBuilder::new(topo)
            .items(1)
            .demand_matrix(vec![vec![0.0; n_edges]])
            .build()
            .unwrap();
        let sol = Algorithm1::new().solve(&inst).unwrap();
        assert!(sol.placement.is_empty());
        assert_eq!(sol.routing.per_request.len(), 0);
    }

    #[test]
    fn respects_integral_capacity_floor() {
        // Fractional cache capacity 1.5 floors to 1 item per node.
        let inst = InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, 8).unwrap())
            .items(5)
            .cache_capacity(1.5)
            .zipf_demand(0.7, 80.0, 2)
            .build()
            .unwrap();
        let sol = Algorithm1::new().solve(&inst).unwrap();
        for v in inst.cache_nodes() {
            assert!(sol.placement.occupancy(&inst, v) <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn works_without_origin() {
        // Two nodes, one cache; requests served only from the cache.
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b);
        g.add_edge(b, a);
        let inst = Instance::new(
            g,
            vec![2.0, 2.0],
            vec![f64::INFINITY, f64::INFINITY],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![Request {
                item: 0,
                node: b,
                rate: 3.0,
            }],
            None,
        )
        .unwrap();
        let sol = Algorithm1::new().solve(&inst).unwrap();
        assert!(sol.placement.has(a, 0));
        assert!((sol.cost(&inst) - 6.0).abs() < 1e-9);
    }
}
