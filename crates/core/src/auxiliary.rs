//! Auxiliary-graph constructions (Lemma 4.5 and §4.3.2): virtual sources
//! connected by zero-cost, uncapacitated virtual links turn joint source
//! selection + routing into pure routing problems.

use jcr_graph::{DiGraph, NodeId, Path};

use crate::instance::Instance;
use crate::placement::Placement;

/// An auxiliary graph: the original network plus virtual source nodes.
///
/// Original edges keep their indices (`0..original_edges`), so a path in
/// the auxiliary graph maps back by dropping virtual edges.
#[derive(Clone, Debug)]
pub struct AuxiliaryGraph {
    /// The augmented graph.
    pub graph: DiGraph,
    /// Costs (original, then zeros for virtual links).
    pub cost: Vec<f64>,
    /// Capacities (original, then infinities for virtual links).
    pub cap: Vec<f64>,
    /// Number of original edges.
    pub original_edges: usize,
    /// The virtual source for each item (all equal for the single-source
    /// construction of Lemma 4.5).
    pub item_source: Vec<NodeId>,
}

impl AuxiliaryGraph {
    /// Lemma 4.5's construction: a single virtual source `v_s` connected
    /// to every node in `storers` (each storing the whole catalog) and to
    /// the instance's origin.
    pub fn single_source(inst: &Instance, storers: &[NodeId]) -> Self {
        let mut graph = inst.graph.clone();
        let mut cost = inst.link_cost.clone();
        let mut cap = inst.link_cap.clone();
        let original_edges = graph.edge_count();
        let vs = graph.add_node();
        let attach = |graph: &mut DiGraph, to: NodeId, cost: &mut Vec<f64>, cap: &mut Vec<f64>| {
            graph.add_edge(vs, to);
            cost.push(0.0);
            cap.push(f64::INFINITY);
        };
        for &v in storers {
            attach(&mut graph, v, &mut cost, &mut cap);
        }
        if let Some(o) = inst.origin {
            if !storers.contains(&o) {
                attach(&mut graph, o, &mut cost, &mut cap);
            }
        }
        AuxiliaryGraph {
            graph,
            cost,
            cap,
            original_edges,
            item_source: vec![vs; inst.num_items()],
        }
    }

    /// §4.3.2's construction `G^x`: one virtual source `v_i` per item,
    /// connected to every node storing `i` under `placement` and to the
    /// origin.
    pub fn per_item(inst: &Instance, placement: &Placement) -> Self {
        let mut graph = inst.graph.clone();
        let mut cost = inst.link_cost.clone();
        let mut cap = inst.link_cap.clone();
        let original_edges = graph.edge_count();
        let mut item_source = Vec::with_capacity(inst.num_items());
        for i in 0..inst.num_items() {
            let vi = graph.add_node();
            item_source.push(vi);
            for v in placement.holders(i) {
                graph.add_edge(vi, v);
                cost.push(0.0);
                cap.push(f64::INFINITY);
            }
            if let Some(o) = inst.origin {
                if !placement.has(o, i) {
                    graph.add_edge(vi, o);
                    cost.push(0.0);
                    cap.push(f64::INFINITY);
                }
            }
        }
        AuxiliaryGraph {
            graph,
            cost,
            cap,
            original_edges,
            item_source,
        }
    }

    /// Strips virtual edges from an auxiliary-graph path, returning the
    /// real path (whose source is the selected real content source).
    pub fn strip_virtual(&self, path: &Path) -> Path {
        Path::new(
            path.edges()
                .iter()
                .copied()
                .filter(|e| e.index() < self.original_edges)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use jcr_topo::{Topology, TopologyKind};

    fn inst() -> Instance {
        InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, 6).unwrap())
            .items(3)
            .cache_capacity(1.0)
            .zipf_demand(1.0, 10.0, 4)
            .build()
            .unwrap()
    }

    #[test]
    fn single_source_shape() {
        let inst = inst();
        let storers = vec![inst.cache_nodes()[0]];
        let aux = AuxiliaryGraph::single_source(&inst, &storers);
        // One new node; two virtual links (storer + origin).
        assert_eq!(aux.graph.node_count(), inst.graph.node_count() + 1);
        assert_eq!(aux.graph.edge_count(), inst.graph.edge_count() + 2);
        let vs = aux.item_source[0];
        assert!(aux.item_source.iter().all(|&v| v == vs));
        assert_eq!(aux.graph.out_degree(vs), 2);
        // Virtual links are free and uncapacitated.
        for e in aux.graph.out_edges(vs) {
            assert_eq!(aux.cost[e.index()], 0.0);
            assert!(aux.cap[e.index()].is_infinite());
        }
    }

    #[test]
    fn per_item_sources_reflect_placement() {
        let inst = inst();
        let mut p = Placement::empty(&inst);
        let v0 = inst.cache_nodes()[0];
        let v1 = inst.cache_nodes()[1];
        p.set(v0, 0, true);
        p.set(v1, 0, true);
        let aux = AuxiliaryGraph::per_item(&inst, &p);
        // Item 0: two storers + origin; items 1, 2: origin only.
        assert_eq!(aux.graph.out_degree(aux.item_source[0]), 3);
        assert_eq!(aux.graph.out_degree(aux.item_source[1]), 1);
        assert_eq!(aux.graph.out_degree(aux.item_source[2]), 1);
    }

    #[test]
    fn strip_virtual_recovers_real_path() {
        let inst = inst();
        let aux = AuxiliaryGraph::single_source(&inst, &[]);
        let vs = aux.item_source[0];
        let tree = jcr_graph::shortest::dijkstra(&aux.graph, vs, &aux.cost);
        let req = inst.requests[0];
        let path = tree.path(req.node).unwrap();
        let real = aux.strip_virtual(&path);
        assert_eq!(real.len(), path.len() - 1);
        assert!(real.is_valid(&inst.graph));
        assert_eq!(real.source(&inst.graph), Some(inst.origin.unwrap()));
        assert_eq!(real.target(&inst.graph), Some(req.node));
    }

    #[test]
    fn lemma_4_5_cost_equivalence() {
        // Routing cost via the auxiliary graph equals nearest-replica cost
        // in the original graph (uncapacitated case).
        let inst = inst();
        let storer = inst.cache_nodes()[2];
        let aux = AuxiliaryGraph::single_source(&inst, &[storer]);
        let vs = aux.item_source[0];
        let tree = jcr_graph::shortest::dijkstra(&aux.graph, vs, &aux.cost);
        let ap = inst.all_pairs();
        let o = inst.origin.unwrap();
        for r in &inst.requests {
            let aux_dist = tree.dist(r.node);
            let direct = ap.dist(storer, r.node).min(ap.dist(o, r.node));
            assert!((aux_dist - direct).abs() < 1e-9);
        }
    }
}
