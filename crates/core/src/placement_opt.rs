//! Content placement under a *given* routing (§4.3.1): maximize the cost
//! saving `F_{r,f}(x)` of Eq. (14) subject to cache capacities.
//!
//! For equal-sized items the paper's approach is an LP on the concave
//! surrogate `L_{r,f}` of Eq. (15) followed by pipage rounding, achieving
//! a `(1 − 1/e)` approximation. The LP here merges consecutive path
//! positions whose "prefix" contains the same set of cache-capable nodes
//! into one auxiliary variable (their optimal values coincide), which
//! keeps the LP small without changing its optimum.
//!
//! The cost model (Eq. (13)): the response to request `(i, s)` on path
//! `p` (source first, requester last) traverses the `k`-th link from the
//! requester iff no node strictly closer to the requester stores `i`; the
//! path's own source is never part of a prefix, and the instance's origin
//! — which permanently stores everything — saves all terms once it enters
//! the prefix.

use jcr_graph::NodeId;
use jcr_lp::{Model, Sense};

use crate::error::JcrError;
use crate::instance::Instance;
use crate::placement::Placement;
use crate::routing::Routing;

/// One merged objective term of Eq. (14)/(15): a maximal run of path
/// links whose prefixes contain the same cache-capable nodes.
#[derive(Clone, Debug)]
pub(crate) struct Segment {
    /// The requested item.
    pub item: usize,
    /// `λ_p ×` (sum of link costs in the run).
    pub weight: f64,
    /// Cache-capable prefix nodes whose placement decides this term.
    pub prefix: Vec<NodeId>,
    /// Whether the origin is in the prefix (term saved regardless of `x`).
    pub saved_by_origin: bool,
}

/// Extracts the objective terms of Eq. (14) from a routing.
pub(crate) fn extract_segments(inst: &Instance, routing: &Routing) -> Vec<Segment> {
    let cacheable = |v: NodeId| inst.cache_cap[v.index()] > 0.0 && Some(v) != inst.origin;
    let mut segments = Vec::new();
    for (req, flows) in inst.requests.iter().zip(&routing.per_request) {
        for pf in flows {
            if pf.amount <= 0.0 || pf.path.is_empty() {
                continue;
            }
            let nodes = pf.path.nodes(&inst.graph);
            let edges = pf.path.edges();
            let n = nodes.len();
            // Walk from the requester backwards: term k (k = 1..n−1) uses
            // edge edges[n−1−k] and adds node nodes[n−k] to the prefix.
            let mut prefix: Vec<NodeId> = Vec::new();
            let mut run_weight = 0.0;
            let close_run =
                |prefix: &Vec<NodeId>, run_weight: &mut f64, segments: &mut Vec<Segment>| {
                    if *run_weight > 0.0 && !prefix.is_empty() {
                        segments.push(Segment {
                            item: req.item,
                            weight: pf.amount * *run_weight,
                            prefix: prefix.clone(),
                            saved_by_origin: false,
                        });
                    }
                    *run_weight = 0.0;
                };
            let mut origin_hit = false;
            for k in 1..n {
                let added = nodes[n - k];
                if Some(added) == inst.origin {
                    close_run(&prefix, &mut run_weight, &mut segments);
                    // Terms k..n−1 (edges[0..=n−1−k]) are saved by the
                    // origin's permanent copy.
                    let rest: f64 = edges[..=n - 1 - k]
                        .iter()
                        .map(|e| inst.link_cost[e.index()])
                        .sum();
                    if rest > 0.0 {
                        segments.push(Segment {
                            item: req.item,
                            weight: pf.amount * rest,
                            prefix: Vec::new(),
                            saved_by_origin: true,
                        });
                    }
                    origin_hit = true;
                    break;
                }
                if cacheable(added) && !prefix.contains(&added) {
                    close_run(&prefix, &mut run_weight, &mut segments);
                    prefix.push(added);
                }
                run_weight += inst.link_cost[edges[n - 1 - k].index()];
            }
            if !origin_hit {
                close_run(&prefix, &mut run_weight, &mut segments);
            }
        }
    }
    segments
}

/// The cost saving `F_{r,f}(x)` of Eq. (14) for an integral placement.
pub fn f_given_routing(inst: &Instance, routing: &Routing, placement: &Placement) -> f64 {
    extract_segments(inst, routing)
        .iter()
        .map(|seg| {
            if seg.saved_by_origin || seg.prefix.iter().any(|&v| placement.has(v, seg.item)) {
                seg.weight
            } else {
                0.0
            }
        })
        .sum()
}

/// The routing cost `C_{r,f}(x)` of Eq. (13): the cost of serving the
/// given path-level routing when each response is truncated at the first
/// prefix node storing the item.
pub fn cost_given_routing(inst: &Instance, routing: &Routing, placement: &Placement) -> f64 {
    routing.cost(inst) - f_given_routing(inst, routing, placement)
}

/// Maximizes `F_{r,f}(x)` with the LP-on-(15) + pipage-rounding scheme —
/// the `(1 − 1/e)`-approximate placement step of the alternating
/// optimization (equal-sized items).
///
/// # Errors
///
/// Propagates LP failures as [`JcrError`].
pub fn optimize_placement(inst: &Instance, routing: &Routing) -> Result<Placement, JcrError> {
    optimize_placement_with(inst, routing, false)
}

/// [`optimize_placement`] under an explicit [`jcr_ctx::SolverContext`]:
/// the LP obeys the context's simplex budget and the pipage pass feeds the
/// rounding counter.
///
/// # Errors
///
/// Same as [`optimize_placement`], plus [`JcrError::BudgetExceeded`] when
/// the budget trips.
pub fn optimize_placement_with_context(
    inst: &Instance,
    routing: &Routing,
    ctx: &jcr_ctx::SolverContext,
) -> Result<Placement, JcrError> {
    optimize_placement_impl(inst, routing, false, ctx)
}

/// Like [`optimize_placement`], optionally running the pipage rounding
/// *size-obliviously* under heterogeneous item sizes — reproducing the
/// infeasible placements of the baselines \[3\], \[38\] that the paper
/// documents in Fig. 5 (their rounding swaps equal fractions of
/// different-sized items).
///
/// # Errors
///
/// Propagates LP failures as [`JcrError`].
pub fn optimize_placement_with(
    inst: &Instance,
    routing: &Routing,
    size_oblivious_rounding: bool,
) -> Result<Placement, JcrError> {
    optimize_placement_impl(
        inst,
        routing,
        size_oblivious_rounding,
        &jcr_ctx::SolverContext::new(),
    )
}

pub(crate) fn optimize_placement_impl(
    inst: &Instance,
    routing: &Routing,
    size_oblivious_rounding: bool,
    ctx: &jcr_ctx::SolverContext,
) -> Result<Placement, JcrError> {
    optimize_placement_warm(inst, routing, size_oblivious_rounding, ctx, None).map(|(p, _)| p)
}

/// [`optimize_placement_impl`] with LP warm-start plumbing: `warm` is a
/// basis snapshot from a previous placement LP (e.g. the prior alternating
/// iteration or the prior online hour), and the returned snapshot feeds
/// the next call. Restoring is best effort — a snapshot whose dimensions
/// no longer match (the segment structure changed with the routing) is
/// silently discarded for a cold solve, so callers thread the basis
/// unconditionally. Returns `None` for the basis only on the trivial
/// no-cache-nodes path, which solves no LP.
pub(crate) fn optimize_placement_warm(
    inst: &Instance,
    routing: &Routing,
    size_oblivious_rounding: bool,
    ctx: &jcr_ctx::SolverContext,
    warm: Option<&jcr_lp::Basis>,
) -> Result<(Placement, Option<jcr_lp::Basis>), JcrError> {
    let cache_nodes = inst.cache_nodes();
    let n_items = inst.num_items();
    if cache_nodes.is_empty() {
        return Ok((Placement::empty(inst), None));
    }
    let segments = extract_segments(inst, routing);
    let mut node_pos = vec![None; inst.graph.node_count()];
    for (k, &v) in cache_nodes.iter().enumerate() {
        node_pos[v.index()] = Some(k);
    }
    let coord = |vi: usize, i: usize| vi * n_items + i;

    // --- LP on (15) ---------------------------------------------------
    // The fractional stage is always size-aware: Σ_i b_i x_vi ≤ c_v.
    let mut model = Model::new(Sense::Maximize);
    let x_var: Vec<jcr_lp::VarId> = (0..cache_nodes.len() * n_items)
        .map(|_| model.add_var(0.0, 1.0, 0.0))
        .collect();
    for seg in &segments {
        if seg.saved_by_origin || seg.weight <= 0.0 {
            continue;
        }
        let z = model.add_var(0.0, 1.0, seg.weight);
        let mut entries = vec![(z, 1.0)];
        for &v in &seg.prefix {
            let vi = node_pos[v.index()].expect("prefix nodes are cache nodes");
            entries.push((x_var[coord(vi, seg.item)], -1.0));
        }
        model.add_row(f64::NEG_INFINITY, 0.0, &entries);
    }
    for (vi, &v) in cache_nodes.iter().enumerate() {
        let entries: Vec<_> = (0..n_items)
            .map(|i| (x_var[coord(vi, i)], inst.item_size[i]))
            .collect();
        model.add_row(f64::NEG_INFINITY, inst.cache_cap[v.index()], &entries);
    }
    let mut lp_solver = model.into_solver();
    let lp = match warm {
        Some(basis) => lp_solver.solve_from_basis(basis, ctx)?,
        None => lp_solver.solve_with_context(ctx)?,
    };
    let basis_out = lp_solver.basis();

    // --- Pipage rounding ------------------------------------------------
    // Gradient of the multilinear extension of (14) at the current x.
    let mut term_of_coord: Vec<Vec<usize>> = vec![Vec::new(); cache_nodes.len() * n_items];
    let mut term_vars: Vec<Vec<usize>> = Vec::new();
    let mut term_weight: Vec<f64> = Vec::new();
    for seg in &segments {
        if seg.saved_by_origin || seg.weight <= 0.0 {
            continue;
        }
        let vars: Vec<usize> = seg
            .prefix
            .iter()
            .map(|&v| coord(node_pos[v.index()].expect("cache node"), seg.item))
            .collect();
        let t = term_vars.len();
        for &c in &vars {
            term_of_coord[c].push(t);
        }
        term_vars.push(vars);
        term_weight.push(seg.weight);
    }
    let mut x: Vec<f64> = x_var.iter().map(|v| lp.x[v.index()]).collect();
    let groups: Vec<Vec<usize>> = (0..cache_nodes.len())
        .map(|vi| (0..n_items).map(|i| coord(vi, i)).collect())
        .collect();
    // Size-oblivious rounding (the literature's scheme under
    // heterogeneous sizes) pairs coordinates as if every item were one
    // slot: its budget is the LP's per-node *item-count* mass, so the
    // rounded placement keeps roughly as many items as the fractional one
    // selected — overflowing the byte capacity whenever the LP favoured
    // small fractions of large items (the paper's Fig. 5 observation).
    // Honest rounding (equal-sized items) uses the true capacity.
    let capacity: Vec<f64> = cache_nodes
        .iter()
        .enumerate()
        .map(|(vi, &v)| {
            if size_oblivious_rounding {
                let mass: f64 = (0..n_items).map(|i| x[coord(vi, i)]).sum();
                mass.ceil()
            } else {
                inst.cache_cap[v.index()].floor()
            }
        })
        .collect();
    {
        let _t = ctx.time(jcr_ctx::Phase::Rounding);
        ctx.count(jcr_ctx::Counter::RoundingPasses, 1);
        jcr_submodular::pipage::pipage_round(&mut x, &groups, &capacity, |c, xs| {
            term_of_coord[c]
                .iter()
                .map(|&t| {
                    let others: f64 = term_vars[t]
                        .iter()
                        .filter(|&&c2| c2 != c)
                        .map(|&c2| 1.0 - xs[c2])
                        .product();
                    term_weight[t] * others
                })
                .sum()
        });
    }

    let mut placement = Placement::empty(inst);
    for (vi, &v) in cache_nodes.iter().enumerate() {
        for i in 0..n_items {
            if x[coord(vi, i)] >= 0.5 {
                placement.set(v, i, true);
            }
        }
    }
    debug_assert!(size_oblivious_rounding || !inst.homogeneous() || placement.is_feasible(inst));
    Ok((placement, basis_out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::rnr;
    use jcr_topo::{Topology, TopologyKind};

    fn inst() -> Instance {
        InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, 21).unwrap())
            .items(6)
            .cache_capacity(2.0)
            .zipf_demand(0.9, 120.0, 13)
            .build()
            .unwrap()
    }

    /// Routing everything from the origin along least-cost paths.
    fn origin_routing(inst: &Instance) -> Routing {
        rnr::route_to_nearest_replica(inst, &Placement::empty(inst)).unwrap()
    }

    #[test]
    fn segments_never_exceed_path_cost() {
        let inst = inst();
        let routing = origin_routing(&inst);
        let segs = extract_segments(&inst, &routing);
        let total_weight: f64 = segs.iter().map(|s| s.weight).sum();
        assert!(total_weight <= routing.cost(&inst) + 1e-6);
        assert!(total_weight > 0.0);
    }

    #[test]
    fn empty_placement_saves_nothing() {
        let inst = inst();
        let routing = origin_routing(&inst);
        let f = f_given_routing(&inst, &routing, &Placement::empty(&inst));
        // The origin is the source of every path (never in a prefix), so
        // the empty placement saves nothing.
        assert_eq!(f, 0.0);
        let c = cost_given_routing(&inst, &routing, &Placement::empty(&inst));
        assert!((c - routing.cost(&inst)).abs() < 1e-9);
    }

    #[test]
    fn caching_at_requester_saves_entire_path() {
        let inst = inst();
        let routing = origin_routing(&inst);
        let req = inst.requests[0];
        let mut p = Placement::empty(&inst);
        p.set(req.node, req.item, true);
        let f = f_given_routing(&inst, &routing, &p);
        let expect: f64 = inst
            .requests
            .iter()
            .zip(&routing.per_request)
            .filter(|(r, _)| r.item == req.item && r.node == req.node)
            .flat_map(|(_, flows)| flows)
            .map(|pf| pf.amount * pf.path.cost(&inst.link_cost))
            .sum();
        assert!((f - expect).abs() < 1e-6, "{f} vs {expect}");
    }

    #[test]
    fn optimized_placement_feasible_and_useful() {
        let inst = inst();
        let routing = origin_routing(&inst);
        let placement = optimize_placement(&inst, &routing).unwrap();
        assert!(placement.is_feasible(&inst));
        let f = f_given_routing(&inst, &routing, &placement);
        assert!(f > 0.0, "placement should save something");
        let c = cost_given_routing(&inst, &routing, &placement);
        assert!(c <= routing.cost(&inst) + 1e-9);
    }

    #[test]
    fn near_optimal_against_sampled_placements() {
        use jcr_ctx::rng::{Rng, SeedableRng};
        let inst = inst();
        let routing = origin_routing(&inst);
        let placement = optimize_placement(&inst, &routing).unwrap();
        let f_opt = f_given_routing(&inst, &routing, &placement);
        let mut rng = jcr_ctx::rng::StdRng::seed_from_u64(77);
        for _ in 0..20 {
            let mut p = Placement::empty(&inst);
            for v in inst.cache_nodes() {
                let budget = inst.cache_cap[v.index()] as usize;
                for _ in 0..budget {
                    p.set(v, rng.gen_range(0..inst.num_items()), true);
                }
            }
            let f_rand = f_given_routing(&inst, &routing, &p);
            assert!(
                f_opt >= (1.0 - 1.0 / std::f64::consts::E) * f_rand - 1e-9,
                "f_opt {f_opt} below guarantee against sampled {f_rand}"
            );
        }
    }

    /// Brute-force the optimal placement for Eq. (14) on a tiny instance
    /// and verify the LP + pipage pipeline's (1 − 1/e) guarantee.
    #[test]
    fn one_minus_one_over_e_against_brute_force() {
        for seed in 0..4 {
            let inst =
                InstanceBuilder::new(jcr_topo::Topology::generate_custom(7, 9, 2, seed).unwrap())
                    .items(3)
                    .cache_capacity(1.0)
                    .zipf_demand(0.9, 40.0, seed)
                    .build()
                    .unwrap();
            let routing = origin_routing(&inst);
            let ours = optimize_placement(&inst, &routing).unwrap();
            let f_ours = f_given_routing(&inst, &routing, &ours);

            // Brute force over feasible placements.
            let cache_nodes = inst.cache_nodes();
            let slots: Vec<(usize, usize)> = cache_nodes
                .iter()
                .enumerate()
                .flat_map(|(vi, _)| (0..inst.num_items()).map(move |i| (vi, i)))
                .collect();
            assert!(slots.len() <= 12);
            let mut opt = 0.0f64;
            'mask: for mask in 0u32..(1 << slots.len()) {
                let mut p = Placement::empty(&inst);
                let mut used = vec![0.0; cache_nodes.len()];
                for (b, &(vi, i)) in slots.iter().enumerate() {
                    if mask & (1 << b) != 0 {
                        used[vi] += 1.0;
                        if used[vi] > inst.cache_cap[cache_nodes[vi].index()] + 1e-9 {
                            continue 'mask;
                        }
                        p.set(cache_nodes[vi], i, true);
                    }
                }
                opt = opt.max(f_given_routing(&inst, &routing, &p));
            }
            let bound = (1.0 - 1.0 / std::f64::consts::E) * opt;
            assert!(
                f_ours >= bound - 1e-6,
                "seed {seed}: {f_ours} < (1 − 1/e)·OPT = {bound}"
            );
        }
    }

    #[test]
    fn size_oblivious_rounding_can_overflow() {
        // Heterogeneous sizes: the literature's rounding swaps equal
        // fractions regardless of size; the honest LP stage is size-aware
        // but the rounding may overflow caches (Fig. 5's observation).
        let inst = InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, 21).unwrap())
            .item_sizes(vec![4.5, 1.5, 3.0, 6.1, 2.2])
            .cache_capacity(6.0)
            .zipf_demand(0.9, 120.0, 13)
            .build()
            .unwrap();
        let routing = origin_routing(&inst);
        let p = optimize_placement_with(&inst, &routing, true).unwrap();
        // Not asserting overflow always happens — but occupancy must be
        // well-defined and the placement non-trivial.
        assert!(!p.is_empty());
        let _ = p.max_occupancy_ratio(&inst);
    }
}
