//! Randomized property tests for the flow substrate: conservation,
//! optimality cross-checks against the LP formulation, decomposition
//! identities, and the Theorem 4.7 guarantees of the MSUFP algorithm on
//! random networks. Instances are drawn from the in-tree seeded PRNG, so
//! every run checks the same cases.

use jcr_ctx::rng::{Rng, SeedableRng, StdRng};
use jcr_flow::cyclecancel::min_cost_flow_cycle_canceling;
use jcr_flow::decompose::{cancel_cycles, decompose_single_source};
use jcr_flow::mincost::{min_cost_flow, single_source_min_cost_flow};
use jcr_flow::msufp::{solve_msufp, Demand};
use jcr_flow::FlowError;
use jcr_graph::{DiGraph, NodeId};

const CASES: u64 = 48;

/// A random layered network: source 0, one mid layer, sinks, with
/// generous fallback edges so demands are always feasible.
#[derive(Debug, Clone)]
struct Net {
    n_mid: usize,
    n_sink: usize,
    cost_seed: Vec<f64>,
    cap_seed: Vec<f64>,
    demands: Vec<f64>,
}

fn random_net(rng: &mut StdRng) -> Net {
    let n_mid = rng.gen_range(1..4usize);
    let n_sink = rng.gen_range(1..4usize);
    let m = n_mid + n_mid * n_sink + n_sink;
    Net {
        n_mid,
        n_sink,
        cost_seed: (0..m).map(|_| rng.gen_range(0.1..10.0)).collect(),
        cap_seed: (0..m).map(|_| rng.gen_range(0.3..4.0)).collect(),
        demands: (0..n_sink).map(|_| rng.gen_range(0.1..2.0)).collect(),
    }
}

/// Builds the graph: source → mids → sinks plus direct source → sink
/// fallback edges with capacity = total demand.
fn build(net: &Net) -> (DiGraph, Vec<f64>, Vec<f64>, NodeId, Vec<NodeId>) {
    let mut g = DiGraph::new();
    let s = g.add_node();
    let mids: Vec<_> = (0..net.n_mid).map(|_| g.add_node()).collect();
    let sinks: Vec<_> = (0..net.n_sink).map(|_| g.add_node()).collect();
    let total: f64 = net.demands.iter().sum();
    let mut cost = Vec::new();
    let mut cap = Vec::new();
    let mut k = 0;
    for &m in &mids {
        g.add_edge(s, m);
        cost.push(net.cost_seed[k]);
        cap.push(net.cap_seed[k] * total);
        k += 1;
    }
    for &m in &mids {
        for &t in &sinks {
            g.add_edge(m, t);
            cost.push(net.cost_seed[k]);
            cap.push(net.cap_seed[k] * total);
            k += 1;
        }
    }
    for &t in &sinks {
        g.add_edge(s, t);
        cost.push(10.0 + net.cost_seed[k]); // expensive fallback
        cap.push(total + 1.0);
        k += 1;
    }
    (g, cost, cap, s, sinks)
}

fn check_conservation(g: &DiGraph, flow: &[f64], supply: &[f64]) {
    for v in g.nodes() {
        let outflow: f64 = g.out_edges(v).iter().map(|e| flow[e.index()]).sum();
        let inflow: f64 = g.in_edges(v).iter().map(|e| flow[e.index()]).sum();
        assert!(
            (outflow - inflow - supply[v.index()]).abs() < 1e-6,
            "conservation violated at {v:?}"
        );
    }
}

/// Min-cost flow: conservation, capacity, and optimality vs the LP.
#[test]
fn min_cost_flow_matches_lp() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x666c_6f77 + case);
        let net = random_net(&mut rng);
        let (g, cost, cap, s, sinks) = build(&net);
        let demands: Vec<(NodeId, f64)> = sinks
            .iter()
            .copied()
            .zip(net.demands.iter().copied())
            .collect();
        let mcf = single_source_min_cost_flow(&g, &cost, &cap, s, &demands).unwrap();
        let mut supply = vec![0.0; g.node_count()];
        for &(d, a) in &demands {
            supply[d.index()] -= a;
            supply[s.index()] += a;
        }
        check_conservation(&g, &mcf.flow, &supply);
        for e in g.edges() {
            assert!(mcf.flow[e.index()] <= cap[e.index()] + 1e-6);
            assert!(mcf.flow[e.index()] >= -1e-9);
        }
        // LP cross-check.
        let mut m = jcr_lp::Model::new(jcr_lp::Sense::Minimize);
        let vars: Vec<_> = g
            .edges()
            .map(|e| m.add_var(0.0, cap[e.index()], cost[e.index()]))
            .collect();
        for v in g.nodes() {
            let mut entries = Vec::new();
            for &e in g.out_edges(v) {
                entries.push((vars[e.index()], 1.0));
            }
            for &e in g.in_edges(v) {
                entries.push((vars[e.index()], -1.0));
            }
            m.add_row(supply[v.index()], supply[v.index()], &entries);
        }
        let lp = m.solve().unwrap();
        assert!(
            (lp.objective - mcf.cost).abs() < 1e-5 * (1.0 + mcf.cost),
            "case {case}: LP {} vs SSP {}",
            lp.objective,
            mcf.cost
        );
        // Third opinion: the independent cycle-canceling solver.
        let cc = min_cost_flow_cycle_canceling(&g, &cost, &cap, &supply).unwrap();
        assert!(
            (cc.cost - mcf.cost).abs() < 1e-5 * (1.0 + mcf.cost),
            "case {case}: cycle-canceling {} vs SSP {}",
            cc.cost,
            mcf.cost
        );
    }
}

/// Decomposition re-composes to the original (acyclic) flow, and every
/// path is simple with the right endpoints.
#[test]
fn decomposition_identity() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xdec0 + case);
        let net = random_net(&mut rng);
        let (g, cost, cap, s, sinks) = build(&net);
        let demands: Vec<(NodeId, f64)> = sinks
            .iter()
            .copied()
            .zip(net.demands.iter().copied())
            .collect();
        let mcf = single_source_min_cost_flow(&g, &cost, &cap, s, &demands).unwrap();
        let mut acyclic = mcf.flow.clone();
        cancel_cycles(&g, &mut acyclic);
        let paths = decompose_single_source(&g, &acyclic, s, &demands).unwrap();
        let mut recomposed = vec![0.0; g.edge_count()];
        for (pfs, &(dest, amount)) in paths.iter().zip(&demands) {
            let total: f64 = pfs.iter().map(|p| p.amount).sum();
            assert!((total - amount).abs() < 1e-6);
            for pf in pfs {
                assert!(pf.path.is_valid(&g));
                assert!(!pf.path.has_repeated_node(&g));
                assert_eq!(pf.path.source(&g), Some(s));
                assert_eq!(pf.path.target(&g), Some(dest));
                for e in pf.path.edges() {
                    recomposed[e.index()] += pf.amount;
                }
            }
        }
        for e in g.edges() {
            assert!(recomposed[e.index()] <= acyclic[e.index()] + 1e-6);
        }
    }
}

/// Theorem 4.7 on random instances: cost within the splittable bound
/// and link loads within the bicriteria bound, for several K.
#[test]
fn msufp_theorem_4_7() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x6d73 + case);
        let net = random_net(&mut rng);
        let k = rng.gen_range(1..6u32);
        let (g, cost, cap, s, sinks) = build(&net);
        let demands: Vec<Demand> = sinks
            .iter()
            .copied()
            .zip(net.demands.iter().copied())
            .map(|(dest, demand)| Demand { dest, demand })
            .collect();
        let sol = match solve_msufp(&g, &cost, &cap, s, &demands, k) {
            Ok(sol) => sol,
            Err(FlowError::Infeasible) => continue, // capacities too tight
            Err(e) => panic!("case {case}: {e}"),
        };
        // (i) cost within the splittable optimum.
        assert!(
            sol.cost <= sol.splittable_cost + 1e-6,
            "case {case}: cost {} above splittable {}",
            sol.cost,
            sol.splittable_cost
        );
        // (ii) congestion within the bicriteria bound.
        let lambda_max = net.demands.iter().cloned().fold(0.0f64, f64::max);
        let factor = (2f64).powf(1.0 / f64::from(k));
        for e in g.edges() {
            let bound = factor / (2.0 * (factor - 1.0)) * lambda_max + factor * cap[e.index()];
            assert!(
                sol.link_loads[e.index()] < bound + 1e-6,
                "case {case}, K={k}: load {} ≥ bound {bound}",
                sol.link_loads[e.index()]
            );
        }
        // Every commodity routed source → destination on a simple path.
        for (p, d) in sol.paths.iter().zip(&demands) {
            assert_eq!(p.source(&g), Some(s));
            assert_eq!(p.target(&g), Some(d.dest));
            assert!(!p.has_repeated_node(&g));
        }
    }
}

/// Balanced random supplies on a ring: min-cost flow always finds a
/// feasible conservative flow when a high-capacity ring exists.
#[test]
fn ring_with_random_supplies() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7269_6e67 + case);
        let n = rng.gen_range(3..7usize);
        let mut supply: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let shift: f64 = supply.iter().sum::<f64>() / n as f64;
        for s in &mut supply {
            *s -= shift;
        }
        let mut g = DiGraph::new();
        let nodes = g.add_nodes(n);
        let mut cost = Vec::new();
        for i in 0..n {
            g.add_edge(nodes[i], nodes[(i + 1) % n]);
            cost.push(1.0 + i as f64);
        }
        let cap = vec![100.0; n];
        let mcf = min_cost_flow(&g, &cost, &cap, &supply).unwrap();
        check_conservation(&g, &mcf.flow, &supply);
    }
}

/// Deterministic replay of a historical regression (cycle-canceling once
/// stopped early on this fan network).
#[test]
fn cycle_canceling_regression_fan() {
    let net = Net {
        n_mid: 2,
        n_sink: 2,
        cost_seed: vec![
            6.75542128420835,
            9.070739198515733,
            0.8371996961318596,
            9.16742649838404,
            0.1,
            0.1,
            8.344827984240164,
            9.836433201960428,
        ],
        cap_seed: vec![0.3; 8],
        demands: vec![0.1, 0.1],
    };
    let (g, cost, cap, s, sinks) = build(&net);
    let demands: Vec<(NodeId, f64)> = sinks
        .iter()
        .copied()
        .zip(net.demands.iter().copied())
        .collect();
    let mcf = single_source_min_cost_flow(&g, &cost, &cap, s, &demands).unwrap();
    let mut supply = vec![0.0; g.node_count()];
    for &(d, a) in &demands {
        supply[d.index()] -= a;
        supply[s.index()] += a;
    }
    let cc = min_cost_flow_cycle_canceling(&g, &cost, &cap, &supply).unwrap();
    assert!(
        (cc.cost - mcf.cost).abs() < 1e-5 * (1.0 + mcf.cost),
        "cycle-canceling {} vs SSP {}",
        cc.cost,
        mcf.cost
    );
}
