//! Conversion of link-level flows into cycle-free path-level flows.
//!
//! This is the decomposition step the paper cites from \[36\]: repeatedly
//! route the maximum amount along a positive-flow path, so that each
//! commodity uses at most `|E|` paths. Flow cycles are cancelled first so
//! the resulting paths are simple.

use jcr_ctx::{Counter, SolverContext};
use jcr_graph::{DiGraph, EdgeId, NodeId, Path};

use crate::{FlowError, PathFlow, FLOW_EPS};

/// Removes all flow cycles from `flow` in place.
///
/// With non-negative edge costs this never increases the flow's cost, and
/// afterwards the positive-flow subgraph is acyclic. Returns the total
/// amount of cycle flow cancelled.
pub fn cancel_cycles(g: &DiGraph, flow: &mut [f64]) -> f64 {
    let mut cancelled = 0.0;
    loop {
        match find_cycle(g, flow) {
            Some(cycle) => {
                let delta = cycle
                    .iter()
                    .map(|e| flow[e.index()])
                    .fold(f64::INFINITY, f64::min);
                for e in &cycle {
                    flow[e.index()] -= delta;
                    if flow[e.index()] < FLOW_EPS {
                        flow[e.index()] = 0.0;
                    }
                }
                cancelled += delta;
            }
            None => return cancelled,
        }
    }
}

/// Finds a directed cycle in the positive-flow subgraph, if any.
fn find_cycle(g: &DiGraph, flow: &[f64]) -> Option<Vec<EdgeId>> {
    let n = g.node_count();
    // Iterative DFS with colors: 0 = white, 1 = on stack, 2 = done.
    let mut color = vec![0u8; n];
    for start in 0..n {
        if color[start] != 0 {
            continue;
        }
        // `stack` holds (node, out-edge cursor); `edge_stack[i]` is the edge
        // used to enter `stack[i + 1]`.
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        let mut edge_stack: Vec<EdgeId> = Vec::new();
        color[start] = 1;
        while let Some(top) = stack.last_mut() {
            let (v, cursor) = *top;
            let out = g.out_edges(NodeId::new(v));
            if cursor < out.len() {
                top.1 += 1;
                let e = out[cursor];
                if flow[e.index()] <= FLOW_EPS {
                    continue;
                }
                let w = g.dst(e).index();
                if color[w] == 1 {
                    // Found a cycle: collect edges back from v to w.
                    let mut cycle = vec![e];
                    let mut cur = v;
                    for back in edge_stack.iter().rev() {
                        if cur == w {
                            break;
                        }
                        cycle.push(*back);
                        cur = g.src(*back).index();
                    }
                    cycle.reverse();
                    return Some(cycle);
                }
                if color[w] == 0 {
                    color[w] = 1;
                    stack.push((w, 0));
                    edge_stack.push(e);
                }
            } else {
                color[v] = 2;
                stack.pop();
                edge_stack.pop();
            }
        }
    }
    None
}

/// Decomposes a single-source link-level `flow` into per-destination path
/// flows.
///
/// `demands` lists `(destination, amount)` pairs; the flow must satisfy
/// them (net inflow at each destination ≥ its total amount). Cycles are
/// cancelled first, so the returned paths are simple. Each destination
/// receives at most `|E|` paths plus one per demand entry.
///
/// # Errors
///
/// [`FlowError::Numerical`] if the flow does not actually carry the
/// demanded amounts (conservation mismatch).
pub fn decompose_single_source(
    g: &DiGraph,
    flow: &[f64],
    source: NodeId,
    demands: &[(NodeId, f64)],
) -> Result<Vec<Vec<PathFlow>>, FlowError> {
    decompose_single_source_with_context(g, flow, source, demands, &SolverContext::new())
}

/// [`decompose_single_source`] under an explicit [`SolverContext`]: every
/// extracted path increments the decomposition-path counter.
///
/// # Errors
///
/// Same as [`decompose_single_source`].
pub fn decompose_single_source_with_context(
    g: &DiGraph,
    flow: &[f64],
    source: NodeId,
    demands: &[(NodeId, f64)],
    ctx: &SolverContext,
) -> Result<Vec<Vec<PathFlow>>, FlowError> {
    let _s = ctx.span("flow.decompose");
    let mut residual = flow.to_vec();
    cancel_cycles(g, &mut residual);
    debug_assert!(
        jcr_graph::structure::is_acyclic(g, |e| residual[e.index()] > FLOW_EPS),
        "cycle cancellation must leave an acyclic flow"
    );
    let scale = demands.iter().map(|d| d.1).sum::<f64>().max(1.0);

    let mut result: Vec<Vec<PathFlow>> = vec![Vec::new(); demands.len()];
    for (idx, &(dest, amount)) in demands.iter().enumerate() {
        let mut remaining = amount;
        while remaining > FLOW_EPS * scale {
            let Some(path) = positive_flow_path(g, &residual, source, dest) else {
                return Err(FlowError::Numerical(format!(
                    "flow under-serves destination {dest:?} by {remaining}"
                )));
            };
            let bottleneck = path
                .edges()
                .iter()
                .map(|e| residual[e.index()])
                .fold(f64::INFINITY, f64::min);
            let push = bottleneck.min(remaining);
            for e in path.edges() {
                residual[e.index()] -= push;
                if residual[e.index()] < FLOW_EPS {
                    residual[e.index()] = 0.0;
                }
            }
            remaining -= push;
            ctx.count(Counter::DecompositionPaths, 1);
            result[idx].push(PathFlow { path, amount: push });
        }
    }
    Ok(result)
}

/// Finds any simple `source -> dest` path in the positive-flow subgraph.
pub fn positive_flow_path(g: &DiGraph, flow: &[f64], source: NodeId, dest: NodeId) -> Option<Path> {
    positive_flow_path_min(g, flow, source, dest, FLOW_EPS)
}

/// Like [`positive_flow_path`], but only uses edges with at least
/// `min_flow` flow.
pub fn positive_flow_path_min(
    g: &DiGraph,
    flow: &[f64],
    source: NodeId,
    dest: NodeId,
    min_flow: f64,
) -> Option<Path> {
    let n = g.node_count();
    let mut parent: Vec<Option<EdgeId>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut stack = vec![source];
    seen[source.index()] = true;
    while let Some(v) = stack.pop() {
        if v == dest {
            let mut edges = Vec::new();
            let mut cur = dest;
            while let Some(e) = parent[cur.index()] {
                edges.push(e);
                cur = g.src(e);
            }
            edges.reverse();
            return Some(Path::new(edges));
        }
        for &e in g.out_edges(v) {
            if flow[e.index()] < min_flow {
                continue;
            }
            let w = g.dst(e);
            if !seen[w.index()] {
                seen[w.index()] = true;
                parent[w.index()] = Some(e);
                stack.push(w);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancels_simple_cycle() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let t = g.add_node();
        let ab = g.add_edge(a, b);
        let ba = g.add_edge(b, a);
        let bt = g.add_edge(b, t);
        // 1 unit a->t via b, plus a 0.5-unit a<->b cycle on top.
        let mut flow = vec![0.0; 3];
        flow[ab.index()] = 1.5;
        flow[ba.index()] = 0.5;
        flow[bt.index()] = 1.0;
        let cancelled = cancel_cycles(&g, &mut flow);
        assert!((cancelled - 0.5).abs() < 1e-9);
        assert!((flow[ab.index()] - 1.0).abs() < 1e-9);
        assert_eq!(flow[ba.index()], 0.0);
        assert!((flow[bt.index()] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn acyclic_flow_untouched() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b);
        let mut flow = vec![2.0];
        assert_eq!(cancel_cycles(&g, &mut flow), 0.0);
        assert_eq!(flow, vec![2.0]);
    }

    #[test]
    fn decomposes_two_destinations() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let a = g.add_node();
        let b = g.add_node();
        let sa = g.add_edge(s, a);
        let sb = g.add_edge(s, b);
        let ab = g.add_edge(a, b);
        let mut flow = vec![0.0; 3];
        flow[sa.index()] = 3.0; // 2 to a, 1 continuing to b
        flow[sb.index()] = 1.0;
        flow[ab.index()] = 1.0;
        let demands = [(a, 2.0), (b, 2.0)];
        let paths = decompose_single_source(&g, &flow, s, &demands).unwrap();
        let total_a: f64 = paths[0].iter().map(|p| p.amount).sum();
        let total_b: f64 = paths[1].iter().map(|p| p.amount).sum();
        assert!((total_a - 2.0).abs() < 1e-9);
        assert!((total_b - 2.0).abs() < 1e-9);
        for (idx, dest) in [(0usize, a), (1usize, b)] {
            for pf in &paths[idx] {
                assert!(pf.path.is_valid(&g));
                assert_eq!(pf.path.source(&g), Some(s));
                assert_eq!(pf.path.target(&g), Some(dest));
            }
        }
    }

    #[test]
    fn recomposition_identity() {
        // Sum of decomposed path flows equals the original (acyclic) flow.
        let mut g = DiGraph::new();
        let s = g.add_node();
        let a = g.add_node();
        let b = g.add_node();
        let t = g.add_node();
        let edges = [
            g.add_edge(s, a),
            g.add_edge(s, b),
            g.add_edge(a, t),
            g.add_edge(b, t),
            g.add_edge(a, b),
        ];
        let mut flow = vec![0.0; 5];
        flow[edges[0].index()] = 2.0;
        flow[edges[1].index()] = 1.0;
        flow[edges[2].index()] = 1.5;
        flow[edges[3].index()] = 1.5;
        flow[edges[4].index()] = 0.5;
        let paths = decompose_single_source(&g, &flow, s, &[(t, 3.0)]).unwrap();
        let mut recomposed = vec![0.0; 5];
        for pf in &paths[0] {
            for e in pf.path.edges() {
                recomposed[e.index()] += pf.amount;
            }
        }
        for (orig, rec) in flow.iter().zip(&recomposed) {
            assert!((orig - rec).abs() < 1e-9);
        }
    }

    #[test]
    fn under_served_demand_is_detected() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let t = g.add_node();
        g.add_edge(s, t);
        let flow = vec![1.0];
        let err = decompose_single_source(&g, &flow, s, &[(t, 2.0)]).unwrap_err();
        assert!(matches!(err, FlowError::Numerical(_)));
    }
}
