//! Dinic's maximum-flow algorithm over real-valued capacities.

use jcr_graph::{DiGraph, NodeId};

use crate::FLOW_EPS;

/// Result of a max-flow computation.
#[derive(Clone, Debug)]
pub struct MaxFlow {
    /// Total flow value from source to sink.
    pub value: f64,
    /// Flow on each original edge, indexed by edge index.
    pub flow: Vec<f64>,
}

impl MaxFlow {
    /// The minimum cut certifying optimality: the original edges crossing
    /// from the source side (nodes reachable in the residual graph) to the
    /// sink side. The sum of their capacities equals [`MaxFlow::value`]
    /// (max-flow/min-cut duality).
    pub fn min_cut(&self, g: &DiGraph, cap: &[f64], source: NodeId) -> Vec<jcr_graph::EdgeId> {
        // Residual reachability: forward edges with slack, or backward
        // edges with flow.
        let n = g.node_count();
        let mut seen = vec![false; n];
        let mut stack = vec![source];
        seen[source.index()] = true;
        while let Some(v) = stack.pop() {
            for &e in g.out_edges(v) {
                let w = g.dst(e);
                if !seen[w.index()] && self.flow[e.index()] + FLOW_EPS < cap[e.index()] {
                    seen[w.index()] = true;
                    stack.push(w);
                }
            }
            for &e in g.in_edges(v) {
                let w = g.src(e);
                if !seen[w.index()] && self.flow[e.index()] > FLOW_EPS {
                    seen[w.index()] = true;
                    stack.push(w);
                }
            }
        }
        g.edges()
            .filter(|&e| {
                let (u, v) = g.endpoints(e);
                seen[u.index()] && !seen[v.index()] && cap[e.index()] > 0.0
            })
            .collect()
    }
}

struct Arc {
    to: usize,
    rev: usize,
    cap: f64,
    /// Index of the original edge this arc was built from (`usize::MAX`
    /// for reverse arcs).
    orig: usize,
}

/// Computes a maximum `source -> sink` flow under `cap` using Dinic's
/// algorithm.
///
/// Edges with zero (or negative) capacity are ignored. Capacities may be
/// `f64::INFINITY`; the returned value is finite only if some finite cut
/// separates source and sink.
pub fn max_flow(g: &DiGraph, cap: &[f64], source: NodeId, sink: NodeId) -> MaxFlow {
    let n = g.node_count();
    let mut arcs: Vec<Arc> = Vec::with_capacity(2 * g.edge_count());
    let mut head: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in g.edges() {
        let c = cap[e.index()];
        if c <= 0.0 {
            continue;
        }
        let (u, v) = g.endpoints(e);
        let a = arcs.len();
        head[u.index()].push(a);
        head[v.index()].push(a + 1);
        arcs.push(Arc {
            to: v.index(),
            rev: a + 1,
            cap: c,
            orig: e.index(),
        });
        arcs.push(Arc {
            to: u.index(),
            rev: a,
            cap: 0.0,
            orig: usize::MAX,
        });
    }

    let s = source.index();
    let t = sink.index();
    let mut value = 0.0;
    if s == t {
        return MaxFlow {
            value: 0.0,
            flow: vec![0.0; g.edge_count()],
        };
    }

    loop {
        // BFS level graph.
        let mut level = vec![usize::MAX; n];
        level[s] = 0;
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for &a in &head[u] {
                let arc = &arcs[a];
                if arc.cap > FLOW_EPS && level[arc.to] == usize::MAX {
                    level[arc.to] = level[u] + 1;
                    queue.push_back(arc.to);
                }
            }
        }
        if level[t] == usize::MAX {
            break;
        }
        // DFS blocking flow with iteration pointers.
        let mut iter = vec![0usize; n];
        loop {
            let pushed = dfs(&mut arcs, &head, &level, &mut iter, s, t, f64::INFINITY);
            if pushed <= FLOW_EPS {
                break;
            }
            value += pushed;
        }
    }

    let mut flow = vec![0.0; g.edge_count()];
    for a in (0..arcs.len()).step_by(2) {
        let orig = arcs[a].orig;
        // Flow on the forward arc equals the residual on its reverse arc.
        flow[orig] += arcs[arcs[a].rev].cap;
    }
    MaxFlow { value, flow }
}

fn dfs(
    arcs: &mut [Arc],
    head: &[Vec<usize>],
    level: &[usize],
    iter: &mut [usize],
    u: usize,
    t: usize,
    limit: f64,
) -> f64 {
    if u == t {
        return limit;
    }
    while iter[u] < head[u].len() {
        let a = head[u][iter[u]];
        let (to, cap) = (arcs[a].to, arcs[a].cap);
        if cap > FLOW_EPS && level[to] == level[u] + 1 {
            let pushed = dfs(arcs, head, level, iter, to, t, limit.min(cap));
            if pushed > FLOW_EPS {
                arcs[a].cap -= pushed;
                let rev = arcs[a].rev;
                arcs[rev].cap += pushed;
                return pushed;
            }
        }
        iter[u] += 1;
    }
    0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_diamond() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let a = g.add_node();
        let b = g.add_node();
        let t = g.add_node();
        g.add_edge(s, a); // 3
        g.add_edge(s, b); // 2
        g.add_edge(a, t); // 2
        g.add_edge(b, t); // 3
        g.add_edge(a, b); // 1
        let mf = max_flow(&g, &[3.0, 2.0, 2.0, 3.0, 1.0], s, t);
        assert!((mf.value - 5.0).abs() < 1e-9);
        // Flow conservation at interior nodes.
        for v in [a, b] {
            let inflow: f64 = g.in_edges(v).iter().map(|e| mf.flow[e.index()]).sum();
            let outflow: f64 = g.out_edges(v).iter().map(|e| mf.flow[e.index()]).sum();
            assert!((inflow - outflow).abs() < 1e-9);
        }
    }

    #[test]
    fn disconnected_has_zero_flow() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let t = g.add_node();
        let mf = max_flow(&g, &[], s, t);
        assert_eq!(mf.value, 0.0);
    }

    #[test]
    fn infinite_capacity_edges() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let m = g.add_node();
        let t = g.add_node();
        g.add_edge(s, m);
        g.add_edge(m, t);
        let mf = max_flow(&g, &[f64::INFINITY, 4.0], s, t);
        assert!((mf.value - 4.0).abs() < 1e-9);
    }

    #[test]
    fn min_cut_certifies_max_flow() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let a = g.add_node();
        let b = g.add_node();
        let t = g.add_node();
        g.add_edge(s, a); // 3
        g.add_edge(s, b); // 2
        g.add_edge(a, t); // 2
        g.add_edge(b, t); // 3
        g.add_edge(a, b); // 1
        let cap = [3.0, 2.0, 2.0, 3.0, 1.0];
        let mf = max_flow(&g, &cap, s, t);
        let cut = mf.min_cut(&g, &cap, s);
        let cut_cap: f64 = cut.iter().map(|e| cap[e.index()]).sum();
        assert!(
            (cut_cap - mf.value).abs() < 1e-9,
            "cut {cut_cap} vs flow {}",
            mf.value
        );
    }

    #[test]
    fn fractional_capacities() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let t = g.add_node();
        g.add_edge(s, t);
        g.add_edge(s, t);
        let mf = max_flow(&g, &[0.25, 0.5], s, t);
        assert!((mf.value - 0.75).abs() < 1e-9);
    }
}
