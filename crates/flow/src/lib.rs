//! Network-flow substrate for the joint caching and routing stack.
//!
//! The paper's routing subproblems are flow problems on the (auxiliary)
//! cache network, and this crate provides all of them from scratch:
//!
//! * [`maxflow`] — Dinic's max-flow, used for feasibility checks and
//!   capacity planning.
//! * [`mincost`] — real-valued min-cost flow via successive shortest paths
//!   with node potentials; this computes the optimal *splittable* flow that
//!   seeds the unsplittable roundings (line 1 of the paper's Algorithm 2).
//! * [`cyclecancel`] — an independent negative-cycle-canceling min-cost
//!   flow used as a differential-testing oracle for `mincost`.
//! * [`feasibility`] — demand-routability diagnostics with min-cut
//!   certificates and uniform-capacity planning.
//! * [`decompose`] — conversion of link-level flows into cycle-free
//!   path-level flows (the Edmonds–Karp-style decomposition of \[36\], at
//!   most `|E|` paths per commodity).
//! * [`unsplittable`] — Skutella's rounding of a splittable flow into an
//!   unsplittable one when demands are powers of two times a base demand
//!   ([33, Algorithm 2]; the paper's Lemma 4.6).
//! * [`msufp`] — the paper's **Algorithm 2**: bicriteria
//!   `(1+ε, 1)`-approximation for the minimum-cost single-source
//!   unsplittable flow problem via demand rounding (11) and K-class
//!   partitioning (12).
//! * [`multicommodity`] — minimum-cost multicommodity *splittable* flow
//!   (MMSFP) by column generation over `jcr-lp`, plus the unsplittable
//!   (MMUFP) heuristics the paper evaluates (randomized rounding of the LP
//!   relaxation, and greedy sequential routing).
//!
//! # Examples
//!
//! ```
//! use jcr_flow::mincost::single_source_min_cost_flow;
//! use jcr_graph::DiGraph;
//!
//! // Route 3 units s -> t, preferring the cheap 2-capacity path.
//! let mut g = DiGraph::new();
//! let s = g.add_node();
//! let a = g.add_node();
//! let t = g.add_node();
//! g.add_edge(s, a); // cost 1, cap 2
//! g.add_edge(a, t); // cost 1, cap 2
//! g.add_edge(s, t); // cost 5, cap 10
//! let flow = single_source_min_cost_flow(
//!     &g,
//!     &[1.0, 1.0, 5.0],
//!     &[2.0, 2.0, 10.0],
//!     s,
//!     &[(t, 3.0)],
//! )?;
//! assert!((flow.cost - 9.0).abs() < 1e-9); // 2 cheap + 1 direct
//! # Ok::<(), jcr_flow::FlowError>(())
//! ```

// Numerical kernels index several parallel arrays in lock-step; iterator
// chains would obscure the linear-algebra structure.
#![allow(clippy::needless_range_loop)]

pub mod cyclecancel;
pub mod decompose;
pub mod feasibility;
pub mod maxflow;
pub mod mincost;
pub mod msufp;
pub mod multicommodity;
pub mod unsplittable;

use std::fmt;

use jcr_graph::Path;

/// Numerical tolerance used throughout the flow algorithms.
pub const FLOW_EPS: f64 = 1e-9;

/// A path carrying a flow amount.
#[derive(Clone, Debug, PartialEq)]
pub struct PathFlow {
    /// The routed path.
    pub path: Path,
    /// Amount of flow (demand units) carried on the path.
    pub amount: f64,
}

/// Errors shared by the flow solvers.
#[derive(Clone, Debug, PartialEq)]
pub enum FlowError {
    /// The demands cannot be satisfied within the link capacities.
    Infeasible,
    /// The solver lost numerical precision or exceeded its iteration budget.
    Numerical(String),
    /// A numerical guardrail tripped: the underlying LP detected basis
    /// drift, or the independent flow certificate verifier rejected the
    /// solution. The payload names the failing residual checks. Callers
    /// should degrade (retry, fall back, keep an incumbent) rather than
    /// trust anything computed so far.
    NumericalBreakdown(String),
    /// A [`jcr_ctx::SolverContext`] budget (deadline or phase iteration
    /// cap) tripped before the solver finished.
    Budget(jcr_ctx::BudgetExceeded),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Infeasible => write!(f, "flow demands are infeasible"),
            FlowError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
            FlowError::NumericalBreakdown(msg) => write!(f, "numerical breakdown: {msg}"),
            FlowError::Budget(b) => write!(f, "{b}"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<jcr_ctx::BudgetExceeded> for FlowError {
    fn from(b: jcr_ctx::BudgetExceeded) -> Self {
        FlowError::Budget(b)
    }
}

impl From<jcr_lp::LpError> for FlowError {
    fn from(e: jcr_lp::LpError) -> Self {
        match e {
            jcr_lp::LpError::Infeasible => FlowError::Infeasible,
            jcr_lp::LpError::Unbounded => FlowError::Numerical("unexpected unbounded LP".into()),
            jcr_lp::LpError::Numerical(m) => FlowError::Numerical(m),
            jcr_lp::LpError::NumericalBreakdown(m) => FlowError::NumericalBreakdown(m),
            jcr_lp::LpError::Budget(b) => FlowError::Budget(b),
        }
    }
}
