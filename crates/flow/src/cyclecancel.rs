//! Klein's negative-cycle-canceling min-cost flow — an independent second
//! implementation used to cross-validate the successive-shortest-paths
//! solver (differential testing) and as a repair pass for externally
//! supplied flows.
//!
//! Any feasible flow is first obtained by max-flow from a super-source;
//! then, while the residual network contains a negative-cost cycle
//! (found by Bellman–Ford), flow is pushed around it. With real-valued
//! capacities the loop terminates once no cycle improves the cost by more
//! than a relative tolerance.

use jcr_graph::{DiGraph, NodeId};

use crate::maxflow::max_flow;
use crate::mincost::MinCostFlow;
use crate::{FlowError, FLOW_EPS};

/// Residual arc: original edge index + direction.
#[derive(Clone, Copy, Debug)]
struct ResArc {
    from: usize,
    to: usize,
    /// Edge index in the original graph.
    edge: usize,
    /// Forward (push increases flow) or backward (push decreases flow).
    forward: bool,
    /// Index of this arc's reverse (same edge, opposite direction), if it
    /// is also residual.
    partner: Option<usize>,
}

/// Computes a minimum-cost flow satisfying `supply` by feasibility
/// max-flow + negative-cycle canceling.
///
/// Results agree with [`crate::mincost::min_cost_flow`] up to numerical
/// tolerance; this implementation exists as an independent oracle and is
/// typically slower.
///
/// # Errors
///
/// [`FlowError::Infeasible`] if the supplies cannot be routed;
/// [`FlowError::Numerical`] if cycle canceling exceeds its iteration
/// budget.
pub fn min_cost_flow_cycle_canceling(
    g: &DiGraph,
    cost: &[f64],
    cap: &[f64],
    supply: &[f64],
) -> Result<MinCostFlow, FlowError> {
    let n = g.node_count();
    let total_supply: f64 = supply.iter().filter(|s| **s > 0.0).sum();

    // Feasibility: super-source → sources, sinks → super-sink.
    let mut aug = g.clone();
    let s_star = aug.add_node();
    let t_star = aug.add_node();
    let mut aug_cap = cap.to_vec();
    for v in 0..n {
        if supply[v] > 0.0 {
            aug.add_edge(s_star, NodeId::new(v));
            aug_cap.push(supply[v]);
        } else if supply[v] < 0.0 {
            aug.add_edge(NodeId::new(v), t_star);
            aug_cap.push(-supply[v]);
        }
    }
    let mf = max_flow(&aug, &aug_cap, s_star, t_star);
    if mf.value + FLOW_EPS * total_supply.max(1.0) < total_supply {
        return Err(FlowError::Infeasible);
    }
    let mut flow: Vec<f64> = mf.flow[..g.edge_count()].to_vec();

    // Cycle canceling on the residual network.
    let scale: f64 = cost
        .iter()
        .zip(cap)
        .map(|(c, k)| if k.is_finite() { c * k } else { *c })
        .sum::<f64>()
        .abs()
        .max(1.0);
    let max_rounds = 200 * (g.edge_count() + 1);
    for _ in 0..max_rounds {
        let arcs = residual_arcs(g, cap, &flow);
        let Some(cycle) = negative_cycle(n, &arcs, cost, 1e-10 * scale) else {
            let total_cost = flow.iter().zip(cost).map(|(f, c)| f * c).sum();
            let certificate = crate::mincost::certify_flow(g, cost, cap, supply, &flow, total_cost);
            if !certificate.verified() {
                return Err(FlowError::NumericalBreakdown(certificate.failure_summary()));
            }
            return Ok(MinCostFlow {
                flow,
                cost: total_cost,
                certificate,
            });
        };
        // Bottleneck along the cycle.
        let mut delta = f64::INFINITY;
        for a in &cycle {
            let room = if a.forward {
                cap[a.edge] - flow[a.edge]
            } else {
                flow[a.edge]
            };
            delta = delta.min(room);
        }
        if delta.is_nan() || delta <= FLOW_EPS {
            return Err(FlowError::Numerical("degenerate residual cycle".into()));
        }
        for a in &cycle {
            if a.forward {
                flow[a.edge] += delta;
            } else {
                flow[a.edge] -= delta;
                if flow[a.edge] < FLOW_EPS {
                    flow[a.edge] = 0.0;
                }
            }
        }
    }
    Err(FlowError::Numerical(
        "cycle canceling did not converge".into(),
    ))
}

fn residual_arcs(g: &DiGraph, cap: &[f64], flow: &[f64]) -> Vec<ResArc> {
    let mut arcs = Vec::with_capacity(2 * g.edge_count());
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        let fwd = flow[e.index()] + FLOW_EPS < cap[e.index()];
        let bwd = flow[e.index()] > FLOW_EPS;
        let base = arcs.len();
        if fwd {
            arcs.push(ResArc {
                from: u.index(),
                to: v.index(),
                edge: e.index(),
                forward: true,
                partner: bwd.then_some(base + 1),
            });
        }
        if bwd {
            arcs.push(ResArc {
                from: v.index(),
                to: u.index(),
                edge: e.index(),
                forward: false,
                partner: fwd.then_some(base),
            });
        }
    }
    arcs
}

/// Bellman–Ford negative-cycle detection over the residual arcs; arc cost
/// is `+w` forward, `−w` backward. Returns a cycle with total cost below
/// `−tol`, if one exists.
///
/// Every node updated in the final (n-th) pass is a candidate: walking its
/// parent pointers lands inside a predecessor-graph cycle. Floating-point
/// ties can make an individual candidate's cycle spuriously ≈ 0-cost, so
/// *all* candidates are examined before giving up — returning `None` too
/// eagerly would silently leave the flow suboptimal.
fn negative_cycle(n: usize, arcs: &[ResArc], cost: &[f64], tol: f64) -> Option<Vec<ResArc>> {
    let mut dist = vec![0.0f64; n];
    let mut parent: Vec<Option<usize>> = vec![None; n]; // index into arcs
    let mut last_updated: Vec<usize> = Vec::new();
    for _round in 0..n {
        last_updated.clear();
        for (ai, a) in arcs.iter().enumerate() {
            // No immediate U-turns: a negative cycle never traverses an
            // edge's forward and backward residual arcs consecutively
            // (they cancel), and allowing it lets exactly-zero-cost
            // digons enter the predecessor graph and mask real cycles.
            if a.partner.is_some() && parent[a.from] == a.partner {
                continue;
            }
            let w = if a.forward {
                cost[a.edge]
            } else {
                -cost[a.edge]
            };
            if dist[a.from] + w < dist[a.to] - 1e-15 {
                dist[a.to] = dist[a.from] + w;
                parent[a.to] = Some(ai);
                last_updated.push(a.to);
            }
        }
        if last_updated.is_empty() {
            return None;
        }
    }
    let mut tried = vec![false; n];
    'candidates: for &cand in &last_updated {
        // Walk parents n times to land inside the candidate's cycle.
        let mut v = cand;
        for _ in 0..n {
            match parent[v] {
                Some(ai) => v = arcs[ai].from,
                None => continue 'candidates,
            }
        }
        if tried[v] {
            continue;
        }
        tried[v] = true;
        let start = v;
        let mut cycle = Vec::new();
        loop {
            let Some(ai) = parent[v] else {
                continue 'candidates;
            };
            cycle.push(arcs[ai]);
            v = arcs[ai].from;
            if v == start {
                break;
            }
            if cycle.len() > arcs.len() {
                continue 'candidates; // malformed parent chain
            }
        }
        cycle.reverse();
        let total: f64 = cycle
            .iter()
            .map(|a| {
                if a.forward {
                    cost[a.edge]
                } else {
                    -cost[a.edge]
                }
            })
            .sum();
        if total < -tol {
            return Some(cycle);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mincost::min_cost_flow;

    #[test]
    fn agrees_with_ssp_on_diamond() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let a = g.add_node();
        let b = g.add_node();
        let t = g.add_node();
        g.add_edge(s, a);
        g.add_edge(s, b);
        g.add_edge(a, t);
        g.add_edge(b, t);
        g.add_edge(a, b);
        let cost = [1.0, 4.0, 1.0, 1.0, 0.5];
        let cap = [2.0, 2.0, 1.5, 2.0, 1.0];
        let supply = [3.0, 0.0, 0.0, -3.0];
        let ssp = min_cost_flow(&g, &cost, &cap, &supply).unwrap();
        let cc = min_cost_flow_cycle_canceling(&g, &cost, &cap, &supply).unwrap();
        assert!(
            (ssp.cost - cc.cost).abs() < 1e-6 * (1.0 + ssp.cost),
            "SSP {} vs cycle-canceling {}",
            ssp.cost,
            cc.cost
        );
    }

    #[test]
    fn detects_infeasible() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let t = g.add_node();
        g.add_edge(s, t);
        let err = min_cost_flow_cycle_canceling(&g, &[1.0], &[1.0], &[3.0, -3.0]);
        assert_eq!(err.unwrap_err(), FlowError::Infeasible);
    }

    #[test]
    fn improves_a_deliberately_bad_feasible_flow() {
        // Two parallel roads; the max-flow initializer may use the
        // expensive one, and cycle canceling must move the flow off it.
        let mut g = DiGraph::new();
        let s = g.add_node();
        let t = g.add_node();
        g.add_edge(s, t); // cheap
        g.add_edge(s, t); // expensive
        let cost = [1.0, 10.0];
        let cap = [5.0, 5.0];
        let supply = [4.0, -4.0];
        let cc = min_cost_flow_cycle_canceling(&g, &cost, &cap, &supply).unwrap();
        assert!(
            (cc.flow[0] - 4.0).abs() < 1e-9,
            "all flow on the cheap road"
        );
        assert!((cc.cost - 4.0).abs() < 1e-9);
    }

    #[test]
    fn zero_supply() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b);
        let cc = min_cost_flow_cycle_canceling(&g, &[1.0], &[1.0], &[0.0, 0.0]).unwrap();
        assert_eq!(cc.cost, 0.0);
    }
}
