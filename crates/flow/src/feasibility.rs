//! Feasibility diagnostics for demand sets: can the demands be routed at
//! all, and if not, which cut is binding? Used for capacity planning (the
//! paper's §6 augmentation keeps instances feasible; these helpers verify
//! and explain that).

use jcr_graph::{DiGraph, EdgeId, NodeId};

use crate::maxflow::max_flow;
use crate::FLOW_EPS;

/// Result of a feasibility check.
#[derive(Clone, Debug)]
pub struct Feasibility {
    /// Whether all demands fit within the capacities (splittably).
    pub feasible: bool,
    /// Total demand.
    pub demand: f64,
    /// Maximum routable amount.
    pub routable: f64,
    /// When infeasible: the binding cut's edges (a certificate — their
    /// capacity sum equals `routable`).
    pub binding_cut: Vec<EdgeId>,
}

impl Feasibility {
    /// Shortfall `demand − routable` (zero when feasible).
    pub fn deficit(&self) -> f64 {
        (self.demand - self.routable).max(0.0)
    }
}

/// Checks whether single-source demands `(dest, amount)` are splittably
/// routable from `source` within `cap`, by max-flow against a super-sink.
///
/// The binding cut is reported in terms of the *original* edges (the
/// virtual sink edges never bind, having capacity exactly equal to the
/// demands).
pub fn check_single_source(
    g: &DiGraph,
    cap: &[f64],
    source: NodeId,
    demands: &[(NodeId, f64)],
) -> Feasibility {
    let total: f64 = demands.iter().map(|d| d.1).sum();
    if total <= 0.0 {
        return Feasibility {
            feasible: true,
            demand: 0.0,
            routable: 0.0,
            binding_cut: Vec::new(),
        };
    }
    // Super-sink construction.
    let mut aug = g.clone();
    let sink = aug.add_node();
    let mut aug_cap = cap.to_vec();
    for &(d, amount) in demands {
        aug.add_edge(d, sink);
        aug_cap.push(amount);
    }
    let mf = max_flow(&aug, &aug_cap, source, sink);
    let feasible = mf.value + FLOW_EPS * total.max(1.0) >= total;
    let binding_cut = if feasible {
        Vec::new()
    } else {
        mf.min_cut(&aug, &aug_cap, source)
            .into_iter()
            .filter(|e| e.index() < g.edge_count())
            .collect()
    };
    Feasibility {
        feasible,
        demand: total,
        routable: mf.value,
        binding_cut,
    }
}

/// The minimum uniform capacity κ (same on every original edge) that makes
/// the demands routable, found by bisection; returns `None` if even
/// unbounded capacity does not help (disconnected).
pub fn min_uniform_capacity(
    g: &DiGraph,
    source: NodeId,
    demands: &[(NodeId, f64)],
    tol: f64,
) -> Option<f64> {
    let total: f64 = demands.iter().map(|d| d.1).sum();
    if total <= 0.0 {
        return Some(0.0);
    }
    let feasible_at = |kappa: f64| {
        let cap = vec![kappa; g.edge_count()];
        check_single_source(g, &cap, source, demands).feasible
    };
    if !feasible_at(total) {
        return None; // some destination is unreachable
    }
    let (mut lo, mut hi) = (0.0f64, total);
    while hi - lo > tol.max(1e-12) * total {
        let mid = 0.5 * (lo + hi);
        if feasible_at(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> (DiGraph, [NodeId; 3]) {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let m = g.add_node();
        let t = g.add_node();
        g.add_edge(s, m);
        g.add_edge(m, t);
        (g, [s, m, t])
    }

    #[test]
    fn feasible_when_capacity_suffices() {
        let (g, [s, m, t]) = path_graph();
        let f = check_single_source(&g, &[5.0, 5.0], s, &[(m, 2.0), (t, 3.0)]);
        assert!(f.feasible);
        assert_eq!(f.deficit(), 0.0);
        assert!(f.binding_cut.is_empty());
    }

    #[test]
    fn infeasible_reports_the_binding_cut() {
        let (g, [s, _, t]) = path_graph();
        let f = check_single_source(&g, &[1.0, 1.0], s, &[(t, 3.0)]);
        assert!(!f.feasible);
        assert!((f.deficit() - 2.0).abs() < 1e-9);
        // The cut is the saturated first (or second) hop.
        assert_eq!(f.binding_cut.len(), 1);
    }

    #[test]
    fn zero_demand_is_trivially_feasible() {
        let (g, [s, _, _]) = path_graph();
        let f = check_single_source(&g, &[0.0, 0.0], s, &[]);
        assert!(f.feasible);
    }

    #[test]
    fn min_uniform_capacity_bisects_correctly() {
        // Both hops carry everything: κ* = total demand on the shared hop.
        let (g, [s, m, t]) = path_graph();
        let kappa = min_uniform_capacity(&g, s, &[(m, 1.0), (t, 2.0)], 1e-9).unwrap();
        // First hop carries 3, second hop carries 2 → κ* = 3.
        assert!((kappa - 3.0).abs() < 1e-6, "kappa = {kappa}");
    }

    #[test]
    fn disconnected_destination_is_hopeless() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let island = g.add_node();
        assert_eq!(min_uniform_capacity(&g, s, &[(island, 1.0)], 1e-9), None);
    }
}
