//! Minimum-cost multicommodity flow: the splittable problem (MMSFP) solved
//! exactly by column generation, and the NP-hard unsplittable variant
//! (MMUFP) approached with the heuristics the paper evaluates
//! (LP relaxation + randomized rounding, and greedy sequential routing).

use std::time::Instant;

use jcr_ctx::rng::Rng;
use jcr_ctx::{Counter, Phase, SolverContext};

/// `Nanos` histogram of per-round column-generation pricing latency (one
/// parallel Dijkstra sweep over the commodity sources).
pub const PRICING_ROUND_NS: &str = "cg.pricing_round_ns";

/// Named counter: carried seed columns accepted by revalidation.
pub const SEED_COLUMNS_ACCEPTED: &str = "cg.seed_accepted";
/// Named counter: carried seed columns rejected by revalidation.
pub const SEED_COLUMNS_REJECTED: &str = "cg.seed_rejected";

use jcr_graph::{shortest, DiGraph, NodeId, Path};
use jcr_lp::{Model, Sense};

use crate::{FlowError, PathFlow, FLOW_EPS};

/// A commodity: `demand` units to route from `source` to `dest`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Commodity {
    /// Origin of the commodity's flow.
    pub source: NodeId,
    /// Destination of the commodity's flow.
    pub dest: NodeId,
    /// Demand (must be positive).
    pub demand: f64,
}

/// An optimal splittable multicommodity flow, path-decomposed.
#[derive(Clone, Debug)]
pub struct McfSolution {
    /// Per-commodity path flows (same order as the input commodities).
    pub path_flows: Vec<Vec<PathFlow>>,
    /// Total routing cost.
    pub cost: f64,
    /// Best Lagrangian lower bound observed across pricing rounds
    /// (`Σ_e ŷ_e·cap_e + Σ_k d_k·sp_k(cost − ŷ)` with `ŷ = min(y, 0)`),
    /// or `−∞` if no finite bound was obtained.
    pub lower_bound: f64,
    /// Independent feasibility/optimality certificate (kind `"mmsfp"`).
    pub certificate: jcr_ctx::cert::Certificate,
}

impl McfSolution {
    /// Load imposed on each link.
    pub fn link_loads(&self, edge_count: usize) -> Vec<f64> {
        let mut loads = vec![0.0; edge_count];
        for flows in &self.path_flows {
            for pf in flows {
                for e in pf.path.edges() {
                    loads[e.index()] += pf.amount;
                }
            }
        }
        loads
    }
}

/// Solves the minimum-cost multicommodity *splittable* flow problem by
/// column generation: the master LP selects flow on generated paths
/// subject to link capacities and per-commodity demands, and the pricing
/// step finds a new least-reduced-cost path per commodity with Dijkstra.
///
/// Links with infinite capacity impose no master row. Costs must be
/// non-negative.
///
/// # Errors
///
/// [`FlowError::Infeasible`] if the demands cannot be routed within the
/// capacities (including unreachable destinations), and
/// [`FlowError::Numerical`] if the LP loses precision.
pub fn min_cost_multicommodity(
    g: &DiGraph,
    cost: &[f64],
    cap: &[f64],
    commodities: &[Commodity],
) -> Result<McfSolution, FlowError> {
    min_cost_multicommodity_with_context(g, cost, cap, commodities, &SolverContext::new())
}

/// [`min_cost_multicommodity`] under an explicit [`SolverContext`]: the
/// context's deadline and `Phase::ColumnGeneration` iteration cap bound the
/// pricing loop, generated columns and Dijkstra runs are counted, and the
/// master LP solves inherit the context's simplex budget.
///
/// # Errors
///
/// Same as [`min_cost_multicommodity`], plus [`FlowError::Budget`] when a
/// budget trips mid-solve.
pub fn min_cost_multicommodity_with_context(
    g: &DiGraph,
    cost: &[f64],
    cap: &[f64],
    commodities: &[Commodity],
    ctx: &SolverContext,
) -> Result<McfSolution, FlowError> {
    min_cost_multicommodity_seeded(g, cost, cap, commodities, &[], ctx).map(|(sol, _)| sol)
}

/// [`min_cost_multicommodity_with_context`] with a carried **column
/// pool**: `seeds` are `(commodity index, node sequence)` paths from a
/// previous, near-identical solve, re-validated hop by hop against *this*
/// graph, cost vector, and commodity list, and added to the master before
/// the first solve so the pricing loop starts from a warm column set.
/// Stale seeds (missing edges, endpoint mismatch, non-simple or
/// infinite-cost paths, out-of-range commodity) are silently dropped —
/// carried columns are an optimization, never an obligation — with the
/// outcome observable via the `cg.seed_accepted` / `cg.seed_rejected`
/// counters.
///
/// Returns the solution together with the **active** column pool of this
/// solve (columns carrying flow above tolerance, as node sequences) for
/// the next hour to seed from. With empty `seeds` the master trajectory
/// is identical to [`min_cost_multicommodity_with_context`], bit for bit.
///
/// # Errors
///
/// Same as [`min_cost_multicommodity_with_context`]; seed validation
/// never errors.
#[allow(clippy::type_complexity)]
pub fn min_cost_multicommodity_seeded(
    g: &DiGraph,
    cost: &[f64],
    cap: &[f64],
    commodities: &[Commodity],
    seeds: &[(usize, Vec<NodeId>)],
    ctx: &SolverContext,
) -> Result<(McfSolution, Vec<(usize, Vec<NodeId>)>), FlowError> {
    let _span = ctx.span("cg.solve");
    let _t = ctx.time(Phase::ColumnGeneration);
    debug_assert!(cost.iter().all(|c| *c >= 0.0));
    if commodities.is_empty() {
        return Ok((
            McfSolution {
                path_flows: Vec::new(),
                cost: 0.0,
                lower_bound: 0.0,
                certificate: jcr_ctx::cert::Certificate::new("mmsfp"),
            },
            Vec::new(),
        ));
    }
    let big = 1e3
        + 10.0
            * cost.iter().copied().filter(|c| c.is_finite()).sum::<f64>()
            * g.node_count() as f64;

    // Master rows: one capacity row per finitely-capacitated edge, one
    // demand row per commodity.
    let mut model = Model::new(Sense::Minimize);
    let mut cap_row = vec![None; g.edge_count()];
    for e in g.edges() {
        let c = cap[e.index()];
        if c.is_finite() {
            cap_row[e.index()] = Some(model.add_row(f64::NEG_INFINITY, c, &[]));
        }
    }
    let mut demand_rows = Vec::with_capacity(commodities.len());
    for c in commodities {
        assert!(c.demand > 0.0, "demands must be positive");
        demand_rows.push(model.add_row(c.demand, c.demand, &[]));
    }
    // Artificial columns keep the master feasible; positive artificials at
    // optimality certify infeasibility.
    let mut artificials = Vec::with_capacity(commodities.len());
    for &row in &demand_rows {
        artificials.push(model.add_var_with_column(0.0, f64::INFINITY, big, &[(row, 1.0)]));
    }
    let mut solver = model.into_solver();

    // Track the generated paths per column.
    let mut col_paths: Vec<(usize, Path)> = Vec::new(); // (commodity idx, path)

    // Seed columns carried from a previous solve, re-validated for the
    // current hour before the first master solve.
    if !seeds.is_empty() {
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        let mut edge_seen = vec![false; g.edge_count()];
        for (i, nodes) in seeds {
            let Some(path) = seed_path(g, cost, commodities, *i, nodes, &mut edge_seen) else {
                rejected += 1;
                continue;
            };
            let mut column = vec![(demand_rows[*i], 1.0)];
            for e in path.edges() {
                if let Some(r) = cap_row[e.index()] {
                    column.push((r, 1.0));
                }
            }
            let obj = path.cost(cost);
            solver.add_column(0.0, f64::INFINITY, obj, &column);
            ctx.count(Counter::CgColumns, 1);
            col_paths.push((*i, path));
            accepted += 1;
        }
        ctx.obs().add_counter(SEED_COLUMNS_ACCEPTED, accepted);
        ctx.obs().add_counter(SEED_COLUMNS_REJECTED, rejected);
    }

    // Group commodities by source to share Dijkstra runs.
    let mut by_source: Vec<Vec<usize>> = vec![Vec::new(); g.node_count()];
    for (i, c) in commodities.iter().enumerate() {
        by_source[c.source.index()].push(i);
    }
    // Pricing work items: sources with at least one commodity, ascending —
    // the same order the serial loop visited them in.
    let source_list: Vec<usize> = (0..g.node_count())
        .filter(|&s| !by_source[s].is_empty())
        .collect();

    let max_rounds = 40 * commodities.len() + 2000;
    let mut solution = {
        let _m = ctx.span("cg.master");
        solver.solve_with_context(ctx)?
    };
    // Best Lagrangian lower bound seen across pricing rounds, and whether
    // pricing converged (no improving column) rather than hitting the
    // round budget. Both feed the certificate below.
    let mut lower_bound = f64::NEG_INFINITY;
    let mut converged = false;
    for _round in 0..max_rounds {
        ctx.check(Phase::ColumnGeneration)?;
        // Pricing: reduced cost of path p for commodity i is
        //   Σ_{e∈p} (w_e − y_e) − σ_i
        // with y_e the (non-positive) capacity duals and σ_i the demand
        // dual, so a Dijkstra under weights w_e − y_e prices all
        // commodities of a common source at once.
        let mut weights = vec![0.0; g.edge_count()];
        for e in g.edges() {
            let y = cap_row[e.index()]
                .map(|r| solution.duals[r.index()])
                .unwrap_or(0.0);
            weights[e.index()] = (cost[e.index()] - y).max(0.0);
        }
        // Price all sources in parallel (one Dijkstra per source prices
        // every commodity sharing it), then add the improving columns in
        // commodity order below so the master LP trajectory — and thus the
        // solution — is identical for any worker count.
        let round_t0 = Instant::now();
        type Priced = (Vec<(usize, Path)>, Vec<(usize, f64)>);
        let priced: Vec<Priced> = {
            let _p = ctx.span("cg.pricing");
            jcr_ctx::par::try_par_map_init(
                ctx,
                &source_list,
                || (shortest::DijkstraScratch::new(), Vec::new()),
                |(scratch, path_buf), wctx, _k, &src| {
                    wctx.check_deadline(Phase::ColumnGeneration)?;
                    shortest::dijkstra_into_with_context(
                        g,
                        NodeId::new(src),
                        &weights,
                        scratch,
                        wctx,
                    );
                    let mut improving = Vec::new();
                    let mut sp = Vec::new();
                    for &i in &by_source[src] {
                        let sigma = solution.duals[demand_rows[i].index()];
                        if !scratch.path_into(g, commodities[i].dest, path_buf) {
                            sp.push((i, f64::INFINITY));
                            continue;
                        }
                        let sp_cost = path_buf.iter().map(|e| weights[e.index()]).sum::<f64>();
                        sp.push((i, sp_cost));
                        let reduced = sp_cost - sigma;
                        if reduced < -1e-7 * (1.0 + sigma.abs()) {
                            improving.push((i, Path::new(path_buf.clone())));
                        }
                    }
                    Ok::<_, FlowError>((improving, sp))
                },
            )?
        };
        ctx.metric_nanos(
            PRICING_ROUND_NS,
            round_t0.elapsed().as_nanos().min(u64::MAX as u128) as u64,
        );
        // Lagrangian bound from this round's duals: relaxing the capacity
        // rows with ŷ = min(y, 0) prices every commodity on its shortest
        // path under `cost − ŷ`, so
        //   L(ŷ) = Σ_e ŷ_e·cap_e + Σ_k d_k·sp_k ≤ OPT.
        // The pricing weights clamp `cost − y` at 0, which can only
        // *shrink* sp_k relative to `cost − ŷ`, keeping the bound valid.
        {
            let mut bound = jcr_ctx::cert::Kahan::new();
            let mut all_reachable = true;
            for e in g.edges() {
                if let Some(r) = cap_row[e.index()] {
                    bound.add_prod(solution.duals[r.index()].min(0.0), cap[e.index()]);
                }
            }
            for (i, sp_cost) in priced.iter().flat_map(|(_, sp)| sp) {
                if sp_cost.is_finite() {
                    bound.add_prod(commodities[*i].demand, *sp_cost);
                } else {
                    all_reachable = false;
                }
            }
            if all_reachable {
                lower_bound = lower_bound.max(bound.total());
            }
        }
        let mut added = false;
        for (i, path) in priced.into_iter().flat_map(|(imp, _)| imp) {
            // Column: 1 on the demand row, 1 per capacitated edge (paths
            // are simple, so each edge appears once).
            let mut column = vec![(demand_rows[i], 1.0)];
            for e in path.edges() {
                if let Some(r) = cap_row[e.index()] {
                    column.push((r, 1.0));
                }
            }
            let obj = path.cost(cost);
            solver.add_column(0.0, f64::INFINITY, obj, &column);
            ctx.count(Counter::CgColumns, 1);
            col_paths.push((i, path));
            added = true;
        }
        if !added {
            converged = true;
            break;
        }
        solution = {
            let _m = ctx.span("cg.master");
            solver.solve_with_context(ctx)?
        };
    }

    // Check artificials.
    for &a in &artificials {
        if solution.x[a.index()] > 1e-6 {
            return Err(FlowError::Infeasible);
        }
    }

    let n_art = artificials.len();
    let mut path_flows: Vec<Vec<PathFlow>> = vec![Vec::new(); commodities.len()];
    let mut total = 0.0;
    for (k, (i, path)) in col_paths.iter().enumerate() {
        let x = solution.x[n_art + k];
        if x > FLOW_EPS {
            total += x * path.cost(cost);
            path_flows[*i].push(PathFlow {
                path: path.clone(),
                amount: x,
            });
        }
    }
    // Commodities whose demand sits below the master's feasibility
    // tolerance can end the CG loop with no column at all: the equality
    // row is satisfied "at zero" within tolerance, so pricing never sees
    // an attractive reduced cost. Route such negligible demands on their
    // plain shortest path — optimal in the infinitesimal-demand limit,
    // with cost and capacity impact below every certificate tolerance —
    // so every commodity leaves with at least one path (downstream
    // rounding requires it).
    if path_flows.iter().any(Vec::is_empty) {
        let mut scratch = shortest::DijkstraScratch::new();
        let mut path_buf = Vec::new();
        for (i, c) in commodities.iter().enumerate() {
            if !path_flows[i].is_empty() {
                continue;
            }
            shortest::dijkstra_into_with_context(g, c.source, cost, &mut scratch, ctx);
            if !scratch.path_into(g, c.dest, &mut path_buf) {
                return Err(FlowError::Infeasible);
            }
            let path = Path::new(path_buf.clone());
            total += c.demand * path.cost(cost);
            path_flows[i].push(PathFlow {
                path,
                amount: c.demand,
            });
        }
    }
    let certificate = certify_multicommodity(
        g,
        cost,
        cap,
        commodities,
        &path_flows,
        total,
        lower_bound,
        converged,
    );
    certificate.record(ctx);
    if !certificate.verified() {
        return Err(FlowError::NumericalBreakdown(certificate.failure_summary()));
    }
    // The active column pool: columns carrying flow above tolerance, as
    // node sequences (edge ids shift across hours; node ids do not).
    let pool: Vec<(usize, Vec<NodeId>)> = col_paths
        .iter()
        .enumerate()
        .filter(|(k, _)| solution.x[n_art + *k] > FLOW_EPS)
        .map(|(_, (i, path))| (*i, path_nodes(g, commodities[*i].source, path)))
        .collect();
    Ok((
        McfSolution {
            path_flows,
            cost: total,
            lower_bound,
            certificate,
        },
        pool,
    ))
}

/// Re-validates one carried seed path against the current graph and
/// costs. `edge_seen` is a caller-provided scratch of `edge_count` flags,
/// false on entry and restored to false on exit.
fn seed_path(
    g: &DiGraph,
    cost: &[f64],
    commodities: &[Commodity],
    i: usize,
    nodes: &[NodeId],
    edge_seen: &mut [bool],
) -> Option<Path> {
    let c = commodities.get(i)?;
    if nodes.first() != Some(&c.source) || nodes.last() != Some(&c.dest) {
        return None;
    }
    if nodes.iter().any(|v| v.index() >= g.node_count()) {
        return None;
    }
    let mut edges = Vec::with_capacity(nodes.len().saturating_sub(1));
    for w in nodes.windows(2) {
        edges.push(g.find_edge(w[0], w[1])?);
    }
    // Reject non-simple or infinite-cost paths: the master column format
    // assumes each edge appears at most once, and a killed
    // (infinite-cost) edge can never carry optimal flow.
    let mut ok = edges.iter().all(|e| cost[e.index()].is_finite());
    for &e in &edges {
        if std::mem::replace(&mut edge_seen[e.index()], true) {
            ok = false;
        }
    }
    for &e in &edges {
        edge_seen[e.index()] = false;
    }
    ok.then(|| Path::new(edges))
}

/// A path as the node sequence it visits, starting from `source`.
fn path_nodes(g: &DiGraph, source: NodeId, path: &Path) -> Vec<NodeId> {
    let mut nodes = Vec::with_capacity(path.edges().len() + 1);
    nodes.push(source);
    for &e in path.edges() {
        nodes.push(g.dst(e));
    }
    nodes
}

/// Independently verifies a path-decomposed multicommodity flow: path
/// endpoints, per-commodity demand satisfaction, link capacity residuals,
/// a compensated recomputation of the reported cost, and — when a finite
/// Lagrangian `lower_bound` is supplied — that the objective respects it
/// (plus a near-optimality gap check when pricing `converged`). All sums
/// are Neumaier–Kahan, independent of the master LP's arithmetic.
#[allow(clippy::too_many_arguments)]
pub fn certify_multicommodity(
    g: &DiGraph,
    cost: &[f64],
    cap: &[f64],
    commodities: &[Commodity],
    path_flows: &[Vec<PathFlow>],
    reported_cost: f64,
    lower_bound: f64,
    converged: bool,
) -> jcr_ctx::cert::Certificate {
    use jcr_ctx::cert::{Certificate, Kahan};
    let mut cert = Certificate::new("mmsfp");
    if path_flows.len() != commodities.len() {
        cert.push("shape", f64::INFINITY, 0.0);
        return cert;
    }

    // Paths must connect their commodity's endpoints and carry finite,
    // non-negative flow.
    let mut endpoints_ok = true;
    let mut neg = 0.0f64;
    for (i, flows) in path_flows.iter().enumerate() {
        for pf in flows {
            if pf.path.source(g) != Some(commodities[i].source)
                || pf.path.target(g) != Some(commodities[i].dest)
            {
                endpoints_ok = false;
            }
            neg = neg.max(-pf.amount);
            if !pf.amount.is_finite() {
                neg = f64::INFINITY;
            }
        }
    }
    cert.push(
        "paths-valid",
        if endpoints_ok { 0.0 } else { f64::INFINITY },
        0.0,
    );
    cert.push("flow-nonneg", neg, FLOW_EPS);

    // Demand satisfaction, worst over commodities, relative to 1 + d_k.
    // The master tolerates artificials up to 1e-6 and extraction drops
    // columns below FLOW_EPS, hence the 1e-5 headroom.
    let mut worst_demand = 0.0f64;
    for (i, flows) in path_flows.iter().enumerate() {
        let mut routed = Kahan::new();
        for pf in flows {
            routed.add(pf.amount);
        }
        let r = (routed.total() - commodities[i].demand).abs();
        worst_demand = worst_demand.max(r / (1.0 + commodities[i].demand));
    }
    cert.push("demand", worst_demand, 1e-5);

    // Link capacity, worst over finite-capacity edges, relative to 1 + cap.
    let mut loads: Vec<Kahan> = vec![Kahan::new(); g.edge_count()];
    for flows in path_flows {
        for pf in flows {
            for e in pf.path.edges() {
                loads[e.index()].add(pf.amount);
            }
        }
    }
    let mut worst_cap = 0.0f64;
    for e in g.edges() {
        let c = cap[e.index()];
        if c.is_finite() {
            worst_cap = worst_cap.max((loads[e.index()].total() - c) / (1.0 + c));
        }
    }
    cert.push("capacity", worst_cap, 1e-5);

    // Cost recomputation (compensated) vs the reported accumulation.
    let mut exact = Kahan::new();
    let mut magnitude = Kahan::new();
    for flows in path_flows {
        for pf in flows {
            let pc = pf.path.cost(cost);
            exact.add_prod(pf.amount, pc);
            magnitude.add((pf.amount * pc).abs());
        }
    }
    cert.push(
        "cost",
        (exact.total() - reported_cost).abs(),
        1e-9 * (1.0 + magnitude.total()),
    );

    // The Lagrangian bound must not exceed the primal objective, and at
    // pricing convergence the duality gap must close to within the
    // pricing threshold's error budget.
    if lower_bound.is_finite() {
        let scale = 1.0 + reported_cost.abs();
        cert.push(
            "cg-bound",
            (lower_bound - reported_cost).max(0.0) / scale,
            1e-6,
        );
        if converged {
            let demand_sum: f64 = commodities.iter().map(|c| c.demand).sum();
            let cap_sum: f64 = cap.iter().copied().filter(|c| c.is_finite()).sum();
            let budget = 1e-5 * (1.0 + reported_cost.abs() + demand_sum + cap_sum);
            cert.push("cg-gap", (reported_cost - lower_bound).max(0.0), budget);
        }
    }
    cert
}

/// An unsplittable routing: one path per commodity.
#[derive(Clone, Debug)]
pub struct UnsplittableSolution {
    /// One path per commodity, in input order.
    pub paths: Vec<Path>,
    /// Total routing cost under the commodity demands.
    pub cost: f64,
    /// Load on each link.
    pub link_loads: Vec<f64>,
}

impl UnsplittableSolution {
    fn from_paths(g: &DiGraph, cost: &[f64], commodities: &[Commodity], paths: Vec<Path>) -> Self {
        let mut link_loads = vec![0.0; g.edge_count()];
        let mut total = 0.0;
        for (p, c) in paths.iter().zip(commodities) {
            total += c.demand * p.cost(cost);
            for e in p.edges() {
                link_loads[e.index()] += c.demand;
            }
        }
        UnsplittableSolution {
            paths,
            cost: total,
            link_loads,
        }
    }

    /// Maximum load-to-capacity ratio over finite-capacity links.
    pub fn congestion(&self, cap: &[f64]) -> f64 {
        self.link_loads
            .iter()
            .zip(cap)
            .filter(|(_, c)| c.is_finite() && **c > 0.0)
            .map(|(l, c)| l / c)
            .fold(0.0, f64::max)
    }
}

/// MMUFP heuristic: randomized rounding of the splittable LP relaxation.
///
/// For each of `draws` trials, every commodity independently picks one of
/// its fractional paths with probability proportional to its flow; the
/// trial with the lexicographically best `(congestion capped at 1, cost)`
/// is kept (i.e. feasible routings are preferred, then cheaper ones; if
/// none is feasible, the least congested wins).
///
/// # Panics
///
/// Panics if a commodity has no fractional path (e.g. `mcf` from a
/// different instance).
pub fn randomized_rounding<R: Rng>(
    g: &DiGraph,
    cost: &[f64],
    cap: &[f64],
    commodities: &[Commodity],
    mcf: &McfSolution,
    draws: usize,
    rng: &mut R,
) -> UnsplittableSolution {
    randomized_rounding_with_context(
        g,
        cost,
        cap,
        commodities,
        mcf,
        draws,
        rng,
        &SolverContext::new(),
    )
}

/// [`randomized_rounding`] under an explicit [`SolverContext`]: each draw
/// is counted as a rounding pass and timed under `Phase::Rounding`.
///
/// # Panics
///
/// Same as [`randomized_rounding`].
#[allow(clippy::too_many_arguments)]
pub fn randomized_rounding_with_context<R: Rng>(
    g: &DiGraph,
    cost: &[f64],
    cap: &[f64],
    commodities: &[Commodity],
    mcf: &McfSolution,
    draws: usize,
    rng: &mut R,
    ctx: &SolverContext,
) -> UnsplittableSolution {
    assert!(draws >= 1, "at least one draw required");
    let _s = ctx.span("flow.rounding");
    let _t = ctx.time(Phase::Rounding);
    ctx.count(Counter::RoundingPasses, draws as u64);
    let mut best: Option<(f64, f64, Vec<Path>)> = None;
    for _ in 0..draws {
        let mut paths = Vec::with_capacity(commodities.len());
        for (i, _c) in commodities.iter().enumerate() {
            let flows = &mcf.path_flows[i];
            assert!(!flows.is_empty(), "commodity {i} has no fractional path");
            let total: f64 = flows.iter().map(|f| f.amount).sum();
            let mut pick = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
            let mut chosen = flows.len() - 1;
            for (k, f) in flows.iter().enumerate() {
                if pick <= f.amount {
                    chosen = k;
                    break;
                }
                pick -= f.amount;
            }
            paths.push(flows[chosen].path.clone());
        }
        let candidate = UnsplittableSolution::from_paths(g, cost, commodities, paths);
        let congestion = candidate.congestion(cap).max(1.0);
        let key = (congestion, candidate.cost);
        if best
            .as_ref()
            .is_none_or(|(bc, bcost, _)| key < (*bc, *bcost))
        {
            best = Some((key.0, key.1, candidate.paths));
        }
    }
    // `best` is Some: `draws >= 1` is asserted above and every iteration
    // either sets it or loses the lexicographic comparison to a prior one.
    let (_, _, paths) = best.expect("at least one draw");
    UnsplittableSolution::from_paths(g, cost, commodities, paths)
}

/// MMUFP heuristic: greedy sequential routing.
///
/// Commodities are processed in decreasing demand order; each is routed on
/// the cheapest path whose residual capacity fits its demand, falling back
/// to the cheapest path outright (overloading links) when none fits.
///
/// Returns `None` for a commodity whose destination is unreachable — in
/// that case the whole call returns [`FlowError::Infeasible`].
pub fn greedy_unsplittable(
    g: &DiGraph,
    cost: &[f64],
    cap: &[f64],
    commodities: &[Commodity],
) -> Result<UnsplittableSolution, FlowError> {
    greedy_unsplittable_with_context(g, cost, cap, commodities, &SolverContext::new())
}

/// [`greedy_unsplittable`] under an explicit [`SolverContext`]: each
/// commodity charges one `Phase::MinCostFlow` iteration (so caps and the
/// wall-clock deadline bound the sequential routing), Dijkstra runs are
/// counted, and the whole call is timed under that phase. This is the
/// budget plumbing behind the online loop's routing-only degradation
/// rung.
///
/// # Errors
///
/// Same as [`greedy_unsplittable`], plus [`FlowError::Budget`] when the
/// budget trips mid-routing.
pub fn greedy_unsplittable_with_context(
    g: &DiGraph,
    cost: &[f64],
    cap: &[f64],
    commodities: &[Commodity],
    ctx: &SolverContext,
) -> Result<UnsplittableSolution, FlowError> {
    let _t = ctx.time(Phase::MinCostFlow);
    ctx.check_deadline(Phase::MinCostFlow)?;
    let mut order: Vec<usize> = (0..commodities.len()).collect();
    order.sort_by(|&a, &b| {
        commodities[b]
            .demand
            .partial_cmp(&commodities[a].demand)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut residual: Vec<f64> = cap.to_vec();
    let mut paths: Vec<Option<Path>> = vec![None; commodities.len()];
    for &i in &order {
        ctx.check(Phase::MinCostFlow)?;
        let c = commodities[i];
        ctx.count(Counter::DijkstraCalls, 1);
        let fits = shortest::dijkstra_filtered(g, c.source, cost, |e| {
            residual[e.index()] + FLOW_EPS >= c.demand
        });
        let path = match fits.path(c.dest) {
            Some(p) => p,
            None => {
                // Overload: cheapest path regardless of capacity.
                ctx.count(Counter::DijkstraCalls, 1);
                let any = shortest::dijkstra(g, c.source, cost);
                match any.path(c.dest) {
                    Some(p) => p,
                    None => return Err(FlowError::Infeasible),
                }
            }
        };
        for e in path.edges() {
            residual[e.index()] -= c.demand;
        }
        paths[i] = Some(path);
    }
    // Every index of `paths` was assigned: `order` is a permutation of
    // `0..commodities.len()` and the loop either routes index `i` or
    // returns `Infeasible`.
    let paths = paths.into_iter().map(|p| p.expect("routed")).collect();
    Ok(UnsplittableSolution::from_paths(
        g,
        cost,
        commodities,
        paths,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcr_ctx::rng::SeedableRng;

    /// Two commodities sharing a bottleneck: the LP must split around it.
    fn bottleneck_instance() -> (DiGraph, Vec<f64>, Vec<f64>, Vec<Commodity>) {
        let mut g = DiGraph::new();
        let s1 = g.add_node();
        let s2 = g.add_node();
        let m = g.add_node();
        let t = g.add_node();
        let mut cost = Vec::new();
        let mut cap = Vec::new();
        g.add_edge(s1, m); // 0
        cost.push(1.0);
        cap.push(10.0);
        g.add_edge(s2, m); // 1
        cost.push(1.0);
        cap.push(10.0);
        g.add_edge(m, t); // 2: cheap but narrow
        cost.push(1.0);
        cap.push(1.5);
        g.add_edge(s1, t); // 3: expensive direct
        cost.push(10.0);
        cap.push(10.0);
        g.add_edge(s2, t); // 4: expensive direct
        cost.push(10.0);
        cap.push(10.0);
        let commodities = vec![
            Commodity {
                source: s1,
                dest: t,
                demand: 1.0,
            },
            Commodity {
                source: s2,
                dest: t,
                demand: 1.0,
            },
        ];
        (g, cost, cap, commodities)
    }

    #[test]
    fn splits_around_bottleneck() {
        let (g, cost, cap, commodities) = bottleneck_instance();
        let sol = min_cost_multicommodity(&g, &cost, &cap, &commodities).unwrap();
        // 1.5 units through the cheap route (cost 2/unit), 0.5 direct
        // (cost 10/unit) → 1.5·2 + 0.5·10 = 8.
        assert!((sol.cost - 8.0).abs() < 1e-6, "cost = {}", sol.cost);
        let loads = sol.link_loads(g.edge_count());
        assert!(loads[2] <= 1.5 + 1e-6);
        for (i, c) in commodities.iter().enumerate() {
            let total: f64 = sol.path_flows[i].iter().map(|f| f.amount).sum();
            assert!((total - c.demand).abs() < 1e-6);
        }
    }

    #[test]
    fn column_generation_is_bit_identical_across_worker_counts() {
        let (g, cost, cap, commodities) = bottleneck_instance();
        let baseline = min_cost_multicommodity_with_context(
            &g,
            &cost,
            &cap,
            &commodities,
            &SolverContext::new().with_workers(1),
        )
        .unwrap();
        for workers in [2, 8] {
            let ctx = SolverContext::new().with_workers(workers);
            let sol =
                min_cost_multicommodity_with_context(&g, &cost, &cap, &commodities, &ctx).unwrap();
            assert_eq!(sol.cost.to_bits(), baseline.cost.to_bits());
            assert_eq!(sol.path_flows.len(), baseline.path_flows.len());
            for (a, b) in sol.path_flows.iter().zip(&baseline.path_flows) {
                assert_eq!(a.len(), b.len());
                for (fa, fb) in a.iter().zip(b) {
                    assert_eq!(fa.path, fb.path);
                    assert_eq!(fa.amount.to_bits(), fb.amount.to_bits());
                }
            }
        }
    }

    #[test]
    fn uncapacitated_reduces_to_shortest_paths() {
        let (g, cost, _, commodities) = bottleneck_instance();
        let cap = vec![f64::INFINITY; g.edge_count()];
        let sol = min_cost_multicommodity(&g, &cost, &cap, &commodities).unwrap();
        assert!((sol.cost - 4.0).abs() < 1e-6); // both use the cheap route
    }

    #[test]
    fn infeasible_demand_detected() {
        let (g, cost, mut cap, commodities) = bottleneck_instance();
        // Shrink the direct routes so total capacity into t is 1.9 < 2.
        cap[3] = 0.4;
        cap[4] = 0.0;
        let err = min_cost_multicommodity(&g, &cost, &cap, &commodities).unwrap_err();
        assert_eq!(err, FlowError::Infeasible);
    }

    #[test]
    fn unreachable_destination_is_infeasible() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let commodities = [Commodity {
            source: a,
            dest: b,
            demand: 1.0,
        }];
        let err = min_cost_multicommodity(&g, &[], &[], &commodities).unwrap_err();
        assert_eq!(err, FlowError::Infeasible);
    }

    #[test]
    fn randomized_rounding_respects_flow_support() {
        let (g, cost, cap, commodities) = bottleneck_instance();
        let mcf = min_cost_multicommodity(&g, &cost, &cap, &commodities).unwrap();
        let mut rng = jcr_ctx::rng::StdRng::seed_from_u64(42);
        let sol = randomized_rounding(&g, &cost, &cap, &commodities, &mcf, 20, &mut rng);
        assert_eq!(sol.paths.len(), 2);
        for (p, c) in sol.paths.iter().zip(&commodities) {
            assert_eq!(p.source(&g), Some(c.source));
            assert_eq!(p.target(&g), Some(c.dest));
        }
        // Every chosen path appears in the fractional support.
        for (i, p) in sol.paths.iter().enumerate() {
            assert!(mcf.path_flows[i].iter().any(|f| &f.path == p));
        }
    }

    #[test]
    fn greedy_prefers_capacity_fitting_paths() {
        let (g, cost, cap, commodities) = bottleneck_instance();
        let sol = greedy_unsplittable(&g, &cost, &cap, &commodities).unwrap();
        // First commodity takes the cheap route (fits 1.0 ≤ 1.5); second
        // cannot fit and must go direct.
        let congestion = sol.congestion(&cap);
        assert!(congestion <= 1.0 + 1e-9, "congestion = {congestion}");
        assert!((sol.cost - 12.0).abs() < 1e-6, "cost = {}", sol.cost);
    }

    #[test]
    fn greedy_overloads_when_nothing_fits() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let t = g.add_node();
        g.add_edge(s, t);
        let commodities = [Commodity {
            source: s,
            dest: t,
            demand: 2.0,
        }];
        let sol = greedy_unsplittable(&g, &[1.0], &[1.0], &commodities).unwrap();
        assert!((sol.congestion(&[1.0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_respects_budget_and_counts_dijkstras() {
        let (g, cost, cap, commodities) = bottleneck_instance();

        // An unconstrained context reproduces the plain entry point and
        // records one Dijkstra per routed commodity.
        let ctx = SolverContext::new();
        let sol = greedy_unsplittable_with_context(&g, &cost, &cap, &commodities, &ctx).unwrap();
        let plain = greedy_unsplittable(&g, &cost, &cap, &commodities).unwrap();
        assert_eq!(sol.paths, plain.paths);
        assert!(ctx.stats().dijkstra_calls >= commodities.len() as u64);

        // A cap below the commodity count trips mid-routing.
        let ctx = SolverContext::with_budget(
            jcr_ctx::Budget::unlimited().with_phase_cap(Phase::MinCostFlow, 1),
        );
        let err = greedy_unsplittable_with_context(&g, &cost, &cap, &commodities, &ctx)
            .expect_err("cap of 1 must interrupt 2 commodities");
        assert!(matches!(err, FlowError::Budget(b) if b.phase == Phase::MinCostFlow));

        // A spent deadline fails before any routing.
        let ctx = SolverContext::with_budget(jcr_ctx::Budget::deadline(std::time::Duration::ZERO));
        let err = greedy_unsplittable_with_context(&g, &cost, &cap, &commodities, &ctx)
            .expect_err("zero deadline must fail fast");
        assert!(matches!(err, FlowError::Budget(_)));
    }

    #[test]
    fn seeded_pool_round_trips_and_rejects_stale_seeds() {
        let (g, cost, cap, commodities) = bottleneck_instance();
        let ctx = SolverContext::new();
        let (first, pool) =
            min_cost_multicommodity_seeded(&g, &cost, &cap, &commodities, &[], &ctx).unwrap();
        assert!(!pool.is_empty());
        // Every pooled column names its commodity's endpoints.
        for (i, nodes) in &pool {
            assert_eq!(nodes.first(), Some(&commodities[*i].source));
            assert_eq!(nodes.last(), Some(&commodities[*i].dest));
        }
        // Re-solving the identical instance from the carried pool must
        // reach the same optimum (costs are unique here, so the same
        // flows) without inventing new claims.
        let (second, _) =
            min_cost_multicommodity_seeded(&g, &cost, &cap, &commodities, &pool, &ctx).unwrap();
        assert!((second.cost - first.cost).abs() < 1e-9);
        // Stale seeds — bad commodity, endpoint mismatch, missing edge,
        // infinite cost — are dropped, not errors.
        let mut killed = cost.clone();
        killed[2] = f64::INFINITY;
        let stale = vec![
            (99usize, pool[0].1.clone()),
            (0usize, vec![commodities[0].dest, commodities[0].source]),
            (0usize, vec![commodities[0].source, commodities[0].source]),
        ];
        let (third, _) =
            min_cost_multicommodity_seeded(&g, &killed, &cap, &commodities, &stale, &ctx).unwrap();
        assert!(third.cost.is_finite());
    }

    #[test]
    fn empty_seeds_match_unseeded_bitwise() {
        let (g, cost, cap, commodities) = bottleneck_instance();
        let ctx = SolverContext::new();
        let plain =
            min_cost_multicommodity_with_context(&g, &cost, &cap, &commodities, &ctx).unwrap();
        let (seeded, _) =
            min_cost_multicommodity_seeded(&g, &cost, &cap, &commodities, &[], &ctx).unwrap();
        assert_eq!(plain.cost.to_bits(), seeded.cost.to_bits());
        for (a, b) in plain.path_flows.iter().zip(&seeded.path_flows) {
            assert_eq!(a.len(), b.len());
            for (fa, fb) in a.iter().zip(b) {
                assert_eq!(fa.path, fb.path);
                assert_eq!(fa.amount.to_bits(), fb.amount.to_bits());
            }
        }
    }

    #[test]
    fn empty_commodities_ok() {
        let g = DiGraph::new();
        let sol = min_cost_multicommodity(&g, &[], &[], &[]).unwrap();
        assert_eq!(sol.cost, 0.0);
    }
}
