//! Skutella's conversion of a splittable flow into an unsplittable flow
//! for demands that are powers of two times a base demand
//! ([33, Algorithm 2]; the paper's Lemma 4.6).
//!
//! Given a single-source splittable flow satisfying demands
//! `λ_i = base · 2^{q_i}`, the algorithm processes demand classes in
//! increasing order. For class `d`: (a) it pushes flow around cycles of
//! non-`d`-integral arcs in the cost-non-increasing direction until every
//! arc flow is a multiple of `d` (flow conservation modulo `d` guarantees
//! such cycles exist), then (b) routes each class-`d` commodity on a
//! positive-flow path and subtracts `d` along it. The result never costs
//! more than the input flow, and the load it adds beyond any arc's input
//! flow is less than the largest demand crossing the arc (Lemma 4.6).

use jcr_graph::{DiGraph, EdgeId, NodeId, Path};

use crate::decompose::positive_flow_path_min;
use crate::{FlowError, FLOW_EPS};

/// A commodity for the unsplittable rounding: all flow originates at the
/// common source passed to [`round_to_unsplittable`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClassCommodity {
    /// Destination node.
    pub dest: NodeId,
    /// Demand; must equal `base · 2^q` for some integer `q ≥ 0`.
    pub demand: f64,
}

/// Rounds a splittable single-source flow into an unsplittable one.
///
/// * `flow` — link-level flow satisfying every commodity's demand from
///   `source` (net inflow at each destination equals the sum of its
///   commodities' demands). Consumed and destroyed.
/// * `commodities` — demands of the form `base · 2^q`; `base` is inferred
///   as the minimum demand.
///
/// Returns one path per commodity, in input order.
///
/// # Errors
///
/// [`FlowError::Numerical`] if demands are not powers of two times the
/// base (beyond tolerance) or the flow does not satisfy them.
pub fn round_to_unsplittable(
    g: &DiGraph,
    cost: &[f64],
    mut flow: Vec<f64>,
    source: NodeId,
    commodities: &[ClassCommodity],
) -> Result<Vec<Path>, FlowError> {
    if commodities.is_empty() {
        return Ok(Vec::new());
    }
    let base = commodities
        .iter()
        .map(|c| c.demand)
        .fold(f64::INFINITY, f64::min);
    if base.is_nan() || base <= 0.0 {
        return Err(FlowError::Numerical("non-positive demand".into()));
    }
    // Group commodity indices by class exponent q.
    let mut max_q = 0u32;
    let mut class_of = Vec::with_capacity(commodities.len());
    for c in commodities {
        let ratio = c.demand / base;
        let q = ratio.log2().round();
        if q < 0.0 || (ratio - (2f64).powi(q as i32)).abs() > 1e-6 * ratio {
            return Err(FlowError::Numerical(format!(
                "demand {} is not base 2^q times {base}",
                c.demand
            )));
        }
        let q = q as u32;
        max_q = max_q.max(q);
        class_of.push(q);
    }

    let scale = commodities.iter().map(|c| c.demand).sum::<f64>().max(1.0);
    let mut paths: Vec<Option<Path>> = vec![None; commodities.len()];

    for q in 0..=max_q {
        let d = base * (2f64).powi(q as i32);
        make_d_integral(g, cost, &mut flow, d, scale)?;
        for (idx, c) in commodities.iter().enumerate() {
            if class_of[idx] != q {
                continue;
            }
            let Some(path) = positive_flow_path_min(g, &flow, source, c.dest, d * (1.0 - 1e-6))
            else {
                return Err(FlowError::Numerical(format!(
                    "no flow-carrying path to {:?} at class {d}",
                    c.dest
                )));
            };
            for e in path.edges() {
                flow[e.index()] -= d;
                if flow[e.index()] < FLOW_EPS * scale {
                    flow[e.index()] = 0.0;
                }
            }
            paths[idx] = Some(path);
        }
    }
    // Every commodity was visited at its own class `q`; if float trouble
    // ever breaks that, report it instead of panicking.
    paths
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            p.ok_or_else(|| {
                FlowError::Numerical(format!("commodity {i} never routed by its class"))
            })
        })
        .collect()
}

/// Pushes flow around cycles of non-`d`-integral arcs (in the direction of
/// non-increasing cost) until every arc flow is an integer multiple of `d`.
fn make_d_integral(
    g: &DiGraph,
    cost: &[f64],
    flow: &mut [f64],
    d: f64,
    scale: f64,
) -> Result<(), FlowError> {
    let tol = (FLOW_EPS * scale).max(d * 1e-9);
    let snap = |f: &mut f64| {
        let m = (*f / d).round() * d;
        if (*f - m).abs() <= tol {
            *f = m.max(0.0);
        }
    };
    for f in flow.iter_mut() {
        snap(f);
    }
    let max_rounds = 4 * g.edge_count() + 16;
    for _ in 0..max_rounds {
        let Some(cycle) = fractional_cycle(g, flow, d, tol) else {
            return Ok(());
        };
        // Each cycle element is (edge, forward?) relative to the traversal
        // orientation. Pushing +δ raises forward arcs and lowers backward
        // arcs; the opposite orientation does the reverse.
        let dir_cost: f64 = cycle
            .iter()
            .map(|&(e, fwd)| {
                if fwd {
                    cost[e.index()]
                } else {
                    -cost[e.index()]
                }
            })
            .sum();
        // Choose the orientation with non-positive cost.
        let flip = dir_cost > 0.0;
        let mut delta = f64::INFINITY;
        for &(e, fwd) in &cycle {
            let rising = fwd != flip;
            let f = flow[e.index()];
            let step = if rising {
                // Distance up to the next multiple of d.
                let up = (f / d).floor() * d + d;
                up - f
            } else {
                // Distance down to the previous multiple of d (≥ 0 since
                // the arc is non-integral, so f > floor ≥ 0).
                f - (f / d).floor() * d
            };
            delta = delta.min(step);
        }
        if delta.is_nan() || delta <= tol {
            return Err(FlowError::Numerical(
                "degenerate cycle push in d-integral rounding".into(),
            ));
        }
        for &(e, fwd) in &cycle {
            let rising = fwd != flip;
            if rising {
                flow[e.index()] += delta;
            } else {
                flow[e.index()] -= delta;
            }
            snap(&mut flow[e.index()]);
            if flow[e.index()] < 0.0 {
                return Err(FlowError::Numerical("negative flow after push".into()));
            }
        }
    }
    Err(FlowError::Numerical(
        "d-integral rounding did not converge".into(),
    ))
}

/// Finds an (undirected) cycle among arcs whose flow is not a multiple of
/// `d`. Returns edges with their orientation relative to the traversal.
///
/// Flow conservation modulo `d` ensures every node touching a
/// non-integral arc touches at least two, so the non-integral subgraph has
/// minimum degree 2 and contains a cycle whenever it is non-empty.
fn fractional_cycle(g: &DiGraph, flow: &[f64], d: f64, tol: f64) -> Option<Vec<(EdgeId, bool)>> {
    let is_fractional = |e: EdgeId| {
        let f = flow[e.index()];
        let m = (f / d).round() * d;
        (f - m).abs() > tol
    };
    let start_edge = g.edges().find(|&e| is_fractional(e))?;
    // Walk the undirected non-integral subgraph from the start edge's
    // source, never immediately reversing the edge just taken, until a node
    // repeats; extract the cycle between the two visits.
    let n = g.node_count();
    let mut visited_at: Vec<Option<usize>> = vec![None; n];
    let mut walk: Vec<(EdgeId, bool)> = Vec::new(); // (edge, traversed forward?)
    let mut cur = g.src(start_edge);
    let mut last_edge: Option<EdgeId> = None;
    for step in 0..=2 * g.edge_count() + 2 {
        if let Some(first) = visited_at[cur.index()] {
            return Some(walk[first..].to_vec());
        }
        visited_at[cur.index()] = Some(step);
        // Pick any incident non-integral edge other than the one we came by.
        let mut next: Option<(EdgeId, bool)> = None;
        for &e in g.out_edges(cur) {
            if Some(e) != last_edge && is_fractional(e) {
                next = Some((e, true));
                break;
            }
        }
        if next.is_none() {
            for &e in g.in_edges(cur) {
                if Some(e) != last_edge && is_fractional(e) {
                    next = Some((e, false));
                    break;
                }
            }
        }
        // Degree-1 fallback (should not happen under conservation mod d,
        // but numerically possible): re-use the incoming edge.
        let (e, fwd) = next.or_else(|| last_edge.map(|e| (e, g.src(e) == cur)))?;
        walk.push((e, fwd));
        cur = if fwd { g.dst(e) } else { g.src(e) };
        last_edge = Some(e);
        let _ = step;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two parallel routes s->t, flow split across them; one commodity of
    /// demand 2 must end up on a single route.
    #[test]
    fn merges_split_flow_onto_one_path() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let a = g.add_node();
        let b = g.add_node();
        let t = g.add_node();
        let sa = g.add_edge(s, a);
        let at = g.add_edge(a, t);
        let sb = g.add_edge(s, b);
        let bt = g.add_edge(b, t);
        let cost = [1.0, 1.0, 3.0, 3.0];
        let mut flow = vec![0.0; 4];
        flow[sa.index()] = 1.0;
        flow[at.index()] = 1.0;
        flow[sb.index()] = 1.0;
        flow[bt.index()] = 1.0;
        let comm = [ClassCommodity {
            dest: t,
            demand: 2.0,
        }];
        let paths = round_to_unsplittable(&g, &cost, flow, s, &comm).unwrap();
        assert_eq!(paths.len(), 1);
        // The cheap route (via a) must be chosen: pushing the cycle in the
        // cost-non-increasing direction moves flow off the expensive route.
        let nodes = paths[0].nodes(&g);
        assert_eq!(nodes, vec![s, a, t]);
    }

    #[test]
    fn two_classes_route_correctly() {
        // Demands 1 and 2 to different destinations.
        let mut g = DiGraph::new();
        let s = g.add_node();
        let x = g.add_node();
        let y = g.add_node();
        let sx = g.add_edge(s, x);
        let sy = g.add_edge(s, y);
        let xy = g.add_edge(x, y);
        let cost = [1.0, 2.0, 0.5];
        let mut flow = vec![0.0; 3];
        // x takes 1; y takes 2 = 1.5 direct + 0.5 via x.
        flow[sx.index()] = 1.5;
        flow[sy.index()] = 1.5;
        flow[xy.index()] = 0.5;
        let comm = [
            ClassCommodity {
                dest: x,
                demand: 1.0,
            },
            ClassCommodity {
                dest: y,
                demand: 2.0,
            },
        ];
        let paths = round_to_unsplittable(&g, &cost, flow, s, &comm).unwrap();
        assert_eq!(paths[0].target(&g), Some(x));
        assert_eq!(paths[1].target(&g), Some(y));
        for p in &paths {
            assert!(p.is_valid(&g));
            assert_eq!(p.source(&g), Some(s));
        }
    }

    #[test]
    fn cost_does_not_increase() {
        // Random-ish split flow; rounded cost must be ≤ splittable cost.
        let mut g = DiGraph::new();
        let s = g.add_node();
        let a = g.add_node();
        let b = g.add_node();
        let t1 = g.add_node();
        let t2 = g.add_node();
        let e = [
            g.add_edge(s, a),
            g.add_edge(s, b),
            g.add_edge(a, t1),
            g.add_edge(b, t1),
            g.add_edge(a, t2),
            g.add_edge(b, t2),
        ];
        let cost = [1.0, 2.0, 1.0, 1.0, 4.0, 1.0];
        let mut flow = vec![0.0; 6];
        // t1 demand 2: 1 via a, 1 via b. t2 demand 1: 0.5 via a, 0.5 via b.
        flow[e[0].index()] = 1.5;
        flow[e[1].index()] = 1.5;
        flow[e[2].index()] = 1.0;
        flow[e[3].index()] = 1.0;
        flow[e[4].index()] = 0.5;
        flow[e[5].index()] = 0.5;
        let split_cost: f64 = flow.iter().zip(&cost).map(|(f, c)| f * c).sum();
        let comm = [
            ClassCommodity {
                dest: t1,
                demand: 2.0,
            },
            ClassCommodity {
                dest: t2,
                demand: 1.0,
            },
        ];
        let paths = round_to_unsplittable(&g, &cost, flow, s, &comm).unwrap();
        let unsplit_cost: f64 = paths
            .iter()
            .zip(&comm)
            .map(|(p, c)| c.demand * p.cost(&cost))
            .sum();
        assert!(
            unsplit_cost <= split_cost + 1e-9,
            "unsplittable {unsplit_cost} > splittable {split_cost}"
        );
    }

    #[test]
    fn rejects_non_power_of_two_demands() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let t = g.add_node();
        g.add_edge(s, t);
        let comm = [
            ClassCommodity {
                dest: t,
                demand: 1.0,
            },
            ClassCommodity {
                dest: t,
                demand: 3.0,
            },
        ];
        let err = round_to_unsplittable(&g, &[1.0], vec![4.0], s, &comm).unwrap_err();
        assert!(matches!(err, FlowError::Numerical(_)));
    }

    #[test]
    fn empty_commodities() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let paths = round_to_unsplittable(&g, &[], vec![], s, &[]).unwrap();
        assert!(paths.is_empty());
    }
}
