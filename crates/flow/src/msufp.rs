//! The paper's **Algorithm 2**: a bicriteria `(1+ε, 1)`-approximation for
//! the minimum-cost single-source unsplittable flow problem (MSUFP).
//!
//! Pipeline (paper §4.2.2):
//! 1. compute the optimal *splittable* flow by min-cost flow (line 1);
//! 2. convert it to per-commodity path flows (line 2, [`crate::decompose`]);
//! 3. round each demand down per Eq. (11) and reduce each commodity's most
//!    expensive paths first until the reduced total matches (lines 3–4);
//! 4. partition commodities into `K` classes per Eq. (12) so that each
//!    class's rounded demands differ by powers of two (line 5);
//! 5. round each class to an unsplittable flow with Skutella's algorithm
//!    ([`crate::unsplittable`], lines 6–7);
//! 6. route each *original* demand on its returned path (line 8).
//!
//! Theorem 4.7: the result costs no more than the optimal (unsplittable)
//! cost, and loads each link `e` by less than
//! `2^{1/K} c_e + 2^{1/K}/(2(2^{1/K}−1)) · λ_max`. With
//! `K = ⌈1/log₂(1+ε)⌉` and `λ_max ≪ c_min` this is a `(1+ε, 1)`
//! bicriteria approximation; `K = 2` recovers the state of the art \[33\].

use jcr_ctx::SolverContext;
use jcr_graph::{DiGraph, NodeId, Path};

use crate::decompose::decompose_single_source_with_context;
use crate::mincost::single_source_min_cost_flow_with_context;
use crate::unsplittable::{round_to_unsplittable, ClassCommodity};
use crate::{FlowError, PathFlow, FLOW_EPS};

/// A commodity of the MSUFP instance: demand `demand` from the common
/// source to `dest`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Demand {
    /// Destination node.
    pub dest: NodeId,
    /// Demand (must be positive).
    pub demand: f64,
}

/// Solution of the MSUFP instance.
#[derive(Clone, Debug)]
pub struct MsufpSolution {
    /// One routing path per input commodity, in input order.
    pub paths: Vec<Path>,
    /// Total routing cost `Σ_i λ_i · cost(p_i)` under the original demands.
    pub cost: f64,
    /// Cost of the optimal splittable flow (a lower bound on the optimal
    /// unsplittable cost).
    pub splittable_cost: f64,
    /// Load imposed on each link by the unsplittable solution.
    pub link_loads: Vec<f64>,
}

impl MsufpSolution {
    /// Maximum load-to-capacity ratio over links with finite capacity
    /// (the paper's congestion metric).
    pub fn congestion(&self, cap: &[f64]) -> f64 {
        self.link_loads
            .iter()
            .zip(cap)
            .filter(|(_, c)| c.is_finite() && **c > 0.0)
            .map(|(l, c)| l / c)
            .fold(0.0, f64::max)
    }
}

/// Solves MSUFP with the paper's Algorithm 2 using `k ≥ 1` demand-rounding
/// classes.
///
/// # Errors
///
/// [`FlowError::Infeasible`] if even the splittable relaxation cannot
/// satisfy the demands; [`FlowError::Numerical`] on internal precision
/// loss.
///
/// # Panics
///
/// Panics if `k == 0` or a demand is non-positive.
pub fn solve_msufp(
    g: &DiGraph,
    cost: &[f64],
    cap: &[f64],
    source: NodeId,
    demands: &[Demand],
    k: u32,
) -> Result<MsufpSolution, FlowError> {
    solve_msufp_with_context(g, cost, cap, source, demands, k, &SolverContext::new())
}

/// [`solve_msufp`] under an explicit [`SolverContext`]: the splittable
/// min-cost flow (line 1) obeys the context's `Phase::MinCostFlow` budget
/// and the decomposition (line 2) feeds the path counter.
///
/// # Errors
///
/// Same as [`solve_msufp`], plus [`FlowError::Budget`] when a budget trips
/// mid-solve.
///
/// # Panics
///
/// Same as [`solve_msufp`].
pub fn solve_msufp_with_context(
    g: &DiGraph,
    cost: &[f64],
    cap: &[f64],
    source: NodeId,
    demands: &[Demand],
    k: u32,
    ctx: &SolverContext,
) -> Result<MsufpSolution, FlowError> {
    assert!(k >= 1, "K must be at least 1");
    assert!(
        demands.iter().all(|d| d.demand > 0.0),
        "demands must be positive"
    );
    if demands.is_empty() {
        return Ok(MsufpSolution {
            paths: Vec::new(),
            cost: 0.0,
            splittable_cost: 0.0,
            link_loads: vec![0.0; g.edge_count()],
        });
    }

    // Line 1: optimal splittable flow (demands aggregated by destination).
    let mut agg: Vec<f64> = vec![0.0; g.node_count()];
    for d in demands {
        agg[d.dest.index()] += d.demand;
    }
    let agg_demands: Vec<(NodeId, f64)> = (0..g.node_count())
        .filter(|&v| agg[v] > 0.0)
        .map(|v| (NodeId::new(v), agg[v]))
        .collect();
    let mcf = single_source_min_cost_flow_with_context(g, cost, cap, source, &agg_demands, ctx)?;

    // Line 2: per-destination path decomposition, then allocation of each
    // destination's path flows to its commodities.
    let dest_paths = decompose_single_source_with_context(g, &mcf.flow, source, &agg_demands, ctx)?;
    let mut per_commodity = allocate_paths_to_commodities(demands, &agg_demands, dest_paths);

    // Line 3: round demands per Eq. (11) via class offsets t_i:
    // t_i = −⌊K·log2(λ_i/λ_max)⌋ for λ_i < λ_max, and t_i = 1 for
    // λ_i = λ_max; the rounded demand is λ_max·2^{−t_i/K} ∈ (λ_i/2^{1/K}, λ_i].
    let lambda_max = demands.iter().map(|d| d.demand).fold(0.0f64, f64::max);
    let kf = f64::from(k);
    let mut t_of = Vec::with_capacity(demands.len());
    let mut rounded = Vec::with_capacity(demands.len());
    for d in demands {
        let t = if d.demand >= lambda_max * (1.0 - 1e-12) {
            1u64
        } else {
            let z = kf * (d.demand / lambda_max).log2();
            // z < 0 strictly; −⌊z⌋ ≥ 1.
            let t = -(z - 1e-12).floor();
            t as u64
        };
        t_of.push(t);
        rounded.push(lambda_max * (2f64).powf(-(t as f64) / kf));
    }

    // Line 4: reduce each commodity's most expensive paths first.
    for (idx, flows) in per_commodity.iter_mut().enumerate() {
        reduce_to(flows, rounded[idx], cost);
    }

    // Lines 5–7: partition by (t_i + j) ≡ 0 (mod K) and Skutella-round
    // each class.
    let mut paths: Vec<Option<Path>> = vec![None; demands.len()];
    for j in 0..u64::from(k) {
        let members: Vec<usize> = (0..demands.len())
            .filter(|&i| (t_of[i] + j) % u64::from(k) == 0)
            .collect();
        if members.is_empty() {
            continue;
        }
        let mut class_flow = vec![0.0; g.edge_count()];
        for &i in &members {
            for pf in &per_commodity[i] {
                for e in pf.path.edges() {
                    class_flow[e.index()] += pf.amount;
                }
            }
        }
        let class_commodities: Vec<ClassCommodity> = members
            .iter()
            .map(|&i| ClassCommodity {
                dest: demands[i].dest,
                demand: rounded[i],
            })
            .collect();
        let class_paths = round_to_unsplittable(g, cost, class_flow, source, &class_commodities)?;
        for (pos, &i) in members.iter().enumerate() {
            paths[i] = Some(class_paths[pos].clone());
        }
    }

    // Line 8: route the original demands on the selected paths. Every
    // commodity belongs to exactly one class (t_i + j ≡ 0 (mod K) has a
    // unique j ∈ [0, K)), but surface a numerical error rather than
    // panicking if float trouble in t_i ever breaks that.
    let paths: Vec<Path> = paths
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            p.ok_or_else(|| {
                FlowError::Numerical(format!("commodity {i} missed by the K-class partition"))
            })
        })
        .collect::<Result<_, _>>()?;
    let mut link_loads = vec![0.0; g.edge_count()];
    let mut total = 0.0;
    for (p, d) in paths.iter().zip(demands) {
        total += d.demand * p.cost(cost);
        for e in p.edges() {
            link_loads[e.index()] += d.demand;
        }
    }
    Ok(MsufpSolution {
        paths,
        cost: total,
        splittable_cost: mcf.cost,
        link_loads,
    })
}

/// Splits per-destination path flows among that destination's commodities
/// (in input order), preserving total amounts.
fn allocate_paths_to_commodities(
    demands: &[Demand],
    agg_demands: &[(NodeId, f64)],
    dest_paths: Vec<Vec<PathFlow>>,
) -> Vec<Vec<PathFlow>> {
    let mut result: Vec<Vec<PathFlow>> = vec![Vec::new(); demands.len()];
    for (slot, &(dest, _)) in agg_demands.iter().enumerate() {
        let holders: Vec<usize> = demands
            .iter()
            .enumerate()
            .filter(|(_, d)| d.dest == dest)
            .map(|(i, _)| i)
            .collect();
        let mut paths = dest_paths[slot].clone();
        let mut path_idx = 0;
        let mut path_left = paths.first().map_or(0.0, |p| p.amount);
        for &ci in &holders {
            let mut need = demands[ci].demand;
            while need > FLOW_EPS {
                if path_left <= FLOW_EPS {
                    path_idx += 1;
                    if path_idx >= paths.len() {
                        break;
                    }
                    path_left = paths[path_idx].amount;
                }
                let take = need.min(path_left);
                result[ci].push(PathFlow {
                    path: paths[path_idx].path.clone(),
                    amount: take,
                });
                need -= take;
                path_left -= take;
            }
        }
        paths.clear();
    }
    result
}

/// Reduces a commodity's path flows — most expensive paths first — until
/// the total equals `target`.
fn reduce_to(flows: &mut Vec<PathFlow>, target: f64, cost: &[f64]) {
    let total: f64 = flows.iter().map(|f| f.amount).sum();
    let mut excess = total - target;
    if excess <= 0.0 {
        return;
    }
    flows.sort_by(|a, b| {
        b.path
            .cost(cost)
            .partial_cmp(&a.path.cost(cost))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for f in flows.iter_mut() {
        if excess <= 0.0 {
            break;
        }
        let cut = f.amount.min(excess);
        f.amount -= cut;
        excess -= cut;
    }
    flows.retain(|f| f.amount > FLOW_EPS);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a fan network: source -> mid1/mid2 -> many leaves.
    fn fan() -> (DiGraph, NodeId, Vec<NodeId>, Vec<f64>, Vec<f64>) {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let m1 = g.add_node();
        let m2 = g.add_node();
        let mut cost = Vec::new();
        let mut cap = Vec::new();
        g.add_edge(s, m1);
        cost.push(1.0);
        cap.push(6.0);
        g.add_edge(s, m2);
        cost.push(2.0);
        cap.push(6.0);
        let mut leaves = Vec::new();
        for _ in 0..4 {
            let l = g.add_node();
            g.add_edge(m1, l);
            cost.push(1.0);
            cap.push(2.0);
            g.add_edge(m2, l);
            cost.push(1.0);
            cap.push(2.0);
            leaves.push(l);
        }
        (g, s, leaves, cost, cap)
    }

    #[test]
    fn solves_feasible_fan() {
        let (g, s, leaves, cost, cap) = fan();
        let demands: Vec<Demand> = leaves
            .iter()
            .map(|&l| Demand {
                dest: l,
                demand: 1.0,
            })
            .collect();
        let sol = solve_msufp(&g, &cost, &cap, s, &demands, 4).unwrap();
        assert_eq!(sol.paths.len(), 4);
        for (p, d) in sol.paths.iter().zip(&demands) {
            assert!(p.is_valid(&g));
            assert_eq!(p.source(&g), Some(s));
            assert_eq!(p.target(&g), Some(d.dest));
        }
        // Theorem 4.7(i): cost ≤ optimal unsplittable ≤ ... but at minimum
        // it cannot exceed ... here every unsplittable routing costs ≥
        // splittable; our solution should cost no more than the exact
        // optimum, which for unit demands equals the splittable cost.
        assert!(sol.cost <= sol.splittable_cost + 1e-6);
    }

    #[test]
    fn congestion_bound_of_theorem_4_7() {
        let (g, s, leaves, cost, cap) = fan();
        // Heterogeneous demands.
        let demands: Vec<Demand> = leaves
            .iter()
            .enumerate()
            .map(|(i, &l)| Demand {
                dest: l,
                demand: 0.4 + 0.37 * i as f64,
            })
            .collect();
        let lambda_max = demands.iter().map(|d| d.demand).fold(0.0, f64::max);
        for k in [1u32, 2, 4, 8] {
            let sol = solve_msufp(&g, &cost, &cap, s, &demands, k).unwrap();
            let factor = (2f64).powf(1.0 / f64::from(k));
            for (e, &load) in sol.link_loads.iter().enumerate() {
                let bound = factor / (2.0 * (factor - 1.0)) * lambda_max + factor * cap[e];
                assert!(
                    load < bound + 1e-9,
                    "K={k}: load {load} ≥ bound {bound} on edge {e}"
                );
            }
            assert!(
                sol.cost <= sol.splittable_cost + 1e-6
                    || sol.cost <= sol.splittable_cost * 1.0 + 1e-6
            );
        }
    }

    #[test]
    fn infeasible_when_cut_too_small() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let t = g.add_node();
        g.add_edge(s, t);
        let demands = [Demand {
            dest: t,
            demand: 5.0,
        }];
        let err = solve_msufp(&g, &[1.0], &[1.0], s, &demands, 2).unwrap_err();
        assert_eq!(err, FlowError::Infeasible);
    }

    #[test]
    fn single_commodity_takes_cheapest_route() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let a = g.add_node();
        let t = g.add_node();
        g.add_edge(s, a); // 0: cost 1
        g.add_edge(a, t); // 1: cost 1
        g.add_edge(s, t); // 2: cost 10
        let demands = [Demand {
            dest: t,
            demand: 1.0,
        }];
        let sol = solve_msufp(&g, &[1.0, 1.0, 10.0], &[5.0, 5.0, 5.0], s, &demands, 3).unwrap();
        assert_eq!(sol.paths[0].nodes(&g), vec![s, a, t]);
        assert!((sol.cost - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_demands() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let sol = solve_msufp(&g, &[], &[], s, &[], 2).unwrap();
        assert!(sol.paths.is_empty());
        assert_eq!(sol.cost, 0.0);
    }

    #[test]
    fn larger_k_never_hurts_much_on_equal_demands() {
        // With equal demands every K yields the same rounding structure.
        let (g, s, leaves, cost, cap) = fan();
        let demands: Vec<Demand> = leaves
            .iter()
            .map(|&l| Demand {
                dest: l,
                demand: 1.5,
            })
            .collect();
        let c1 = solve_msufp(&g, &cost, &cap, s, &demands, 1).unwrap().cost;
        let c8 = solve_msufp(&g, &cost, &cap, s, &demands, 8).unwrap().cost;
        assert!((c1 - c8).abs() < 1e-6);
    }
}
