//! Real-valued minimum-cost flow via successive shortest paths with node
//! potentials.
//!
//! This is the workhorse behind line 1 of the paper's Algorithm 2: the
//! optimal *splittable* single-source flow that the unsplittable roundings
//! start from. Supplies/demands and capacities are `f64`; costs must be
//! non-negative (the cache-network costs `w_uv ≥ 0` always are).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use jcr_ctx::cert::{Certificate, Kahan};
use jcr_ctx::{Counter, Phase, SolverContext};
use jcr_graph::{DiGraph, NodeId};

use crate::{FlowError, FLOW_EPS};

/// Result of a min-cost flow computation.
#[derive(Clone, Debug)]
pub struct MinCostFlow {
    /// Flow on each original edge, indexed by edge index.
    pub flow: Vec<f64>,
    /// Total cost `Σ_e w_e · flow_e`.
    pub cost: f64,
    /// Independent feasibility/cost certificate (see [`certify_flow`]).
    pub certificate: Certificate,
}

/// Independently verifies an edge flow against the instance it claims to
/// solve: non-negativity, capacity residuals, per-node conservation
/// against `supply`, and a compensated recomputation of the reported
/// cost. All accumulation uses Neumaier–Kahan summation, never the
/// solver's own running totals, so a solver bug or drifting accumulator
/// cannot certify itself.
pub fn certify_flow(
    g: &DiGraph,
    cost: &[f64],
    cap: &[f64],
    supply: &[f64],
    flow: &[f64],
    reported_cost: f64,
) -> Certificate {
    let mut cert = Certificate::new("mincost");
    if flow.len() != g.edge_count() || cost.len() != flow.len() || cap.len() != flow.len() {
        cert.push("shape", f64::INFINITY, 0.0);
        return cert;
    }
    let scale: f64 = supply.iter().map(|s| s.abs()).sum::<f64>().max(1.0);

    let finite = flow.iter().all(|f| f.is_finite());
    cert.push("flow-finite", if finite { 0.0 } else { f64::INFINITY }, 0.0);
    if !finite {
        return cert;
    }

    let mut neg = 0.0f64;
    let mut over = 0.0f64;
    for e in 0..flow.len() {
        neg = neg.max(-flow[e]);
        over = over.max(flow[e] - cap[e]);
    }
    cert.push("flow-nonneg", neg, FLOW_EPS * scale);
    cert.push("capacity", over, 1e-7 * scale);

    // Conservation: net outflow of v must equal supply[v].
    let mut worst = 0.0f64;
    for v in g.nodes() {
        let mut net = Kahan::new();
        for e in g.out_edges(v) {
            net.add(flow[e.index()]);
        }
        for e in g.in_edges(v) {
            net.add(-flow[e.index()]);
        }
        net.add(-supply[v.index()]);
        worst = worst.max(net.total().abs());
    }
    cert.push("conservation", worst, 1e-6 * scale);

    // Cost: the solver's naive accumulation vs a compensated dot product.
    let mut exact = Kahan::new();
    let mut magnitude = Kahan::new();
    for e in 0..flow.len() {
        exact.add_prod(flow[e], cost[e]);
        magnitude.add((flow[e] * cost[e]).abs());
    }
    cert.push(
        "cost",
        (exact.total() - reported_cost).abs(),
        1e-9 * (1.0 + magnitude.total()),
    );
    cert
}

struct Arc {
    to: usize,
    rev: usize,
    cap: f64,
    cost: f64,
    orig: Option<usize>,
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Computes a minimum-cost flow satisfying `supply` (positive entries are
/// sources, negative are sinks; must sum to ≈ 0) within capacities `cap`
/// under non-negative `cost`.
///
/// # Errors
///
/// [`FlowError::Infeasible`] if the supplies cannot be routed within the
/// capacities; [`FlowError::Numerical`] on iteration-budget exhaustion.
///
/// # Panics
///
/// Panics (debug) if a cost is negative/NaN or supplies do not balance.
pub fn min_cost_flow(
    g: &DiGraph,
    cost: &[f64],
    cap: &[f64],
    supply: &[f64],
) -> Result<MinCostFlow, FlowError> {
    min_cost_flow_with_context(g, cost, cap, supply, &SolverContext::new())
}

/// [`min_cost_flow`] under an explicit [`SolverContext`]: the context's
/// deadline and `Phase::MinCostFlow` iteration cap bound the successive
/// shortest-path loop, and Dijkstra runs are counted.
///
/// # Errors
///
/// Same as [`min_cost_flow`], plus [`FlowError::Budget`] when a budget
/// trips mid-solve.
pub fn min_cost_flow_with_context(
    g: &DiGraph,
    cost: &[f64],
    cap: &[f64],
    supply: &[f64],
    ctx: &SolverContext,
) -> Result<MinCostFlow, FlowError> {
    let _s = ctx.span("flow.mincost");
    let _t = ctx.time(Phase::MinCostFlow);
    debug_assert!(cost.iter().all(|c| *c >= 0.0), "costs must be non-negative");
    let total: f64 = supply.iter().sum();
    let scale: f64 = supply.iter().map(|s| s.abs()).sum::<f64>().max(1.0);
    debug_assert!(
        total.abs() <= 1e-6 * scale,
        "supplies must balance (sum = {total})"
    );

    let n = g.node_count();
    let mut arcs: Vec<Arc> = Vec::with_capacity(2 * g.edge_count());
    let mut head: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in g.edges() {
        let c = cap[e.index()];
        if c <= 0.0 {
            continue;
        }
        let (u, v) = g.endpoints(e);
        let a = arcs.len();
        head[u.index()].push(a);
        head[v.index()].push(a + 1);
        arcs.push(Arc {
            to: v.index(),
            rev: a + 1,
            cap: c,
            cost: cost[e.index()],
            orig: Some(e.index()),
        });
        arcs.push(Arc {
            to: u.index(),
            rev: a,
            cap: 0.0,
            cost: -cost[e.index()],
            orig: None,
        });
    }

    let mut excess: Vec<f64> = supply.to_vec();
    // Potentials start at zero: all original costs are non-negative.
    let mut pi = vec![0.0; n];
    let max_augment = 200 * (g.edge_count() + n) + 10_000;

    for _round in 0..max_augment {
        ctx.check(Phase::MinCostFlow)?;
        let Some(s) = (0..n).find(|&v| excess[v] > FLOW_EPS * scale.max(1.0)) else {
            break;
        };
        // Dijkstra with reduced costs from s.
        ctx.count(Counter::DijkstraCalls, 1);
        let mut dist = vec![f64::INFINITY; n];
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut done = vec![false; n];
        dist[s] = 0.0;
        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry { dist: 0.0, node: s });
        while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
            if done[u] {
                continue;
            }
            done[u] = true;
            for &a in &head[u] {
                let arc = &arcs[a];
                if arc.cap <= FLOW_EPS {
                    continue;
                }
                let rc = (arc.cost + pi[u] - pi[arc.to]).max(0.0);
                let nd = d + rc;
                if nd < dist[arc.to] - 1e-15 {
                    dist[arc.to] = nd;
                    parent[arc.to] = Some(a);
                    heap.push(HeapEntry {
                        dist: nd,
                        node: arc.to,
                    });
                }
            }
        }
        // Pick the nearest reachable deficit node.
        let mut target: Option<usize> = None;
        for v in 0..n {
            if excess[v] < -FLOW_EPS * scale.max(1.0)
                && dist[v].is_finite()
                && target.is_none_or(|t| dist[v] < dist[t])
            {
                target = Some(v);
            }
        }
        let Some(t) = target else {
            return Err(FlowError::Infeasible);
        };
        // Update potentials (only where reached).
        for v in 0..n {
            if dist[v].is_finite() {
                pi[v] += dist[v];
            }
        }
        // Bottleneck along the path.
        let mut delta = excess[s].min(-excess[t]);
        let mut v = t;
        while let Some(a) = parent[v] {
            delta = delta.min(arcs[a].cap);
            v = arcs[arcs[a].rev].to;
        }
        // Augment.
        let mut v = t;
        while let Some(a) = parent[v] {
            arcs[a].cap -= delta;
            let rev = arcs[a].rev;
            arcs[rev].cap += delta;
            v = arcs[rev].to;
        }
        excess[s] -= delta;
        excess[t] += delta;
    }

    if excess.iter().any(|&e| e.abs() > 1e-6 * scale) {
        return Err(FlowError::Numerical("augmentation budget exhausted".into()));
    }

    let mut flow = vec![0.0; g.edge_count()];
    let mut total_cost = 0.0;
    for a in (0..arcs.len()).step_by(2) {
        if let Some(orig) = arcs[a].orig {
            let f = arcs[arcs[a].rev].cap;
            flow[orig] += f;
            total_cost += f * cost[orig];
        }
    }
    let certificate = certify_flow(g, cost, cap, supply, &flow, total_cost);
    certificate.record(ctx);
    if !certificate.verified() {
        return Err(FlowError::NumericalBreakdown(certificate.failure_summary()));
    }
    Ok(MinCostFlow {
        flow,
        cost: total_cost,
        certificate,
    })
}

/// Convenience wrapper: single source, per-destination demands.
///
/// # Errors
///
/// Same as [`min_cost_flow`].
pub fn single_source_min_cost_flow(
    g: &DiGraph,
    cost: &[f64],
    cap: &[f64],
    source: NodeId,
    demands: &[(NodeId, f64)],
) -> Result<MinCostFlow, FlowError> {
    single_source_min_cost_flow_with_context(g, cost, cap, source, demands, &SolverContext::new())
}

/// [`single_source_min_cost_flow`] under an explicit [`SolverContext`].
///
/// # Errors
///
/// Same as [`min_cost_flow_with_context`].
pub fn single_source_min_cost_flow_with_context(
    g: &DiGraph,
    cost: &[f64],
    cap: &[f64],
    source: NodeId,
    demands: &[(NodeId, f64)],
    ctx: &SolverContext,
) -> Result<MinCostFlow, FlowError> {
    let mut supply = vec![0.0; g.node_count()];
    for &(d, amount) in demands {
        debug_assert!(amount >= 0.0);
        supply[d.index()] -= amount;
        supply[source.index()] += amount;
    }
    min_cost_flow_with_context(g, cost, cap, &supply, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Verifies conservation: net outflow of `v` equals `supply[v]`.
    fn check_conservation(g: &DiGraph, flow: &[f64], supply: &[f64]) {
        for v in g.nodes() {
            let outflow: f64 = g.out_edges(v).iter().map(|e| flow[e.index()]).sum();
            let inflow: f64 = g.in_edges(v).iter().map(|e| flow[e.index()]).sum();
            assert!(
                (outflow - inflow - supply[v.index()]).abs() < 1e-6,
                "conservation violated at {v:?}"
            );
        }
    }

    #[test]
    fn prefers_cheap_path_until_saturated() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let a = g.add_node();
        let t = g.add_node();
        let sa = g.add_edge(s, a); // cost 1, cap 2
        let at = g.add_edge(a, t); // cost 1, cap 2
        let st = g.add_edge(s, t); // cost 5, cap 10
        let cost = [1.0, 1.0, 5.0];
        let cap = [2.0, 2.0, 10.0];
        let supply = [3.0, 0.0, -3.0];
        let mcf = min_cost_flow(&g, &cost, &cap, &supply).unwrap();
        check_conservation(&g, &mcf.flow, &supply);
        assert!((mcf.flow[sa.index()] - 2.0).abs() < 1e-9);
        assert!((mcf.flow[at.index()] - 2.0).abs() < 1e-9);
        assert!((mcf.flow[st.index()] - 1.0).abs() < 1e-9);
        assert!((mcf.cost - 9.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_when_capacity_missing() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let t = g.add_node();
        g.add_edge(s, t);
        let r = min_cost_flow(&g, &[1.0], &[1.0], &[2.0, -2.0]);
        assert_eq!(r.unwrap_err(), FlowError::Infeasible);
    }

    #[test]
    fn multiple_sinks() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(s, a); // cost 2
        g.add_edge(s, b); // cost 3
        g.add_edge(a, b); // cost 0.5
        let cost = [2.0, 3.0, 0.5];
        let cap = [10.0, 10.0, 1.0];
        let mcf = single_source_min_cost_flow(&g, &cost, &cap, s, &[(a, 2.0), (b, 2.0)]).unwrap();
        let supply = [4.0, -2.0, -2.0];
        check_conservation(&g, &mcf.flow, &supply);
        // One unit of b's demand should detour via a (2 + 0.5 < 3).
        assert!((mcf.flow[2] - 1.0).abs() < 1e-9);
        assert!((mcf.cost - (3.0 * 2.0 + 0.5 * 1.0 + 3.0 * 1.0)).abs() < 1e-9);
    }

    #[test]
    fn zero_supply_is_trivial() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b);
        let mcf = min_cost_flow(&g, &[1.0], &[1.0], &[0.0, 0.0]).unwrap();
        assert_eq!(mcf.cost, 0.0);
        assert!(mcf.flow.iter().all(|&f| f == 0.0));
    }

    #[test]
    fn fractional_demands() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let t = g.add_node();
        g.add_edge(s, t);
        g.add_edge(s, t);
        let mcf = min_cost_flow(&g, &[1.0, 2.0], &[0.3, 1.0], &[0.8, -0.8]).unwrap();
        assert!((mcf.flow[0] - 0.3).abs() < 1e-9);
        assert!((mcf.flow[1] - 0.5).abs() < 1e-9);
        assert!((mcf.cost - 1.3).abs() < 1e-9);
    }

    #[test]
    fn matches_lp_on_small_instance() {
        // Cross-check against the LP formulation of the same flow problem.
        use jcr_lp::{Model, Sense};
        let mut g = DiGraph::new();
        let nodes: Vec<_> = (0..4).map(|_| g.add_node()).collect();
        let mut edges = Vec::new();
        let topo = [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (0, 3)];
        for &(u, v) in &topo {
            edges.push(g.add_edge(nodes[u], nodes[v]));
        }
        let cost = [1.0, 4.0, 1.0, 5.0, 1.0, 9.0];
        let cap = [2.0, 2.0, 1.0, 2.0, 2.0, 2.0];
        let supply = [3.0, 0.0, 0.0, -3.0];
        let mcf = min_cost_flow(&g, &cost, &cap, &supply).unwrap();

        let mut m = Model::new(Sense::Minimize);
        let vars: Vec<_> = edges
            .iter()
            .enumerate()
            .map(|(i, _)| m.add_var(0.0, cap[i], cost[i]))
            .collect();
        for (vi, v) in nodes.iter().enumerate() {
            let mut entries = Vec::new();
            for (i, &e) in edges.iter().enumerate() {
                if g.src(e) == *v {
                    entries.push((vars[i], 1.0));
                }
                if g.dst(e) == *v {
                    entries.push((vars[i], -1.0));
                }
            }
            m.add_row(supply[vi], supply[vi], &entries);
        }
        let lp = m.solve().unwrap();
        assert!(
            (lp.objective - mcf.cost).abs() < 1e-6,
            "lp {} vs mcf {}",
            lp.objective,
            mcf.cost
        );
    }
}
