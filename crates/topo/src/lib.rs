//! ISP-like topology substrate for the cache-network evaluation.
//!
//! The paper evaluates on the Rocketfuel **Abovenet** topology (§6) and
//! the Topology-Zoo **Abvt / Tinet / Deltacom** topologies (Appendix D.4).
//! The raw datasets are not redistributable here, so this crate generates
//! seeded random topologies that match the published shapes — node/edge
//! counts, sparsity, a degree-1 origin gateway, low-degree edge nodes —
//! and applies the paper's cost model (origin links drawn from
//! `[100, 200]`, core links from `[1, 20]`). A plain edge-list loader
//! ([`Topology::from_edge_list`]) lets real datasets be plugged in
//! unchanged.
//!
//! # Examples
//!
//! ```
//! use jcr_topo::{Topology, TopologyKind};
//!
//! let topo = Topology::generate(TopologyKind::Abovenet, 1).expect("generation succeeds");
//! assert_eq!(topo.graph.node_count(), 23);
//! assert_eq!(topo.graph.degree(topo.origin), 2); // degree-1 gateway (1 in + 1 out)
//! assert!(!topo.edge_nodes.is_empty());
//! ```

use std::fmt;

use jcr_ctx::rng::StdRng;
use jcr_ctx::rng::{Rng, SeedableRng};

use jcr_graph::{shortest, DiGraph, NodeId};

/// The evaluation topologies of the paper, by published size.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// Rocketfuel Abovenet-like (§6): 23 nodes, 31 undirected links.
    Abovenet,
    /// Topology-Zoo Abvt-like (Table 5): 23 nodes, 31 links.
    Abvt,
    /// Topology-Zoo Tinet-like (Table 5): 53 nodes, 89 links.
    Tinet,
    /// Topology-Zoo Deltacom-like (Table 5): 113 nodes, 161 links.
    Deltacom,
    /// Synthetic stress family, an order of magnitude past the paper's
    /// largest evaluation topology: 1000 nodes, 10000 undirected links.
    /// Exercises the solver stack's flat-memory paths (CSR adjacency,
    /// on-demand distance rows) at a scale where a dense |V|² distance
    /// matrix is no longer acceptable.
    Stress,
}

impl TopologyKind {
    /// `(nodes, undirected links)` of the published topology (or the
    /// synthetic stress shape).
    pub fn size(self) -> (usize, usize) {
        match self {
            TopologyKind::Abovenet | TopologyKind::Abvt => (23, 31),
            TopologyKind::Tinet => (53, 89),
            TopologyKind::Deltacom => (113, 161),
            TopologyKind::Stress => (1000, 10_000),
        }
    }

    /// Number of designated edge (cache) nodes: the appendix-D setting
    /// for the paper topologies, scaled up for the stress family.
    pub fn edge_node_count(self) -> usize {
        match self {
            TopologyKind::Stress => 64,
            _ => DEFAULT_EDGE_NODES,
        }
    }

    /// Display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::Abovenet => "Abovenet",
            TopologyKind::Abvt => "Abvt",
            TopologyKind::Tinet => "Tinet",
            TopologyKind::Deltacom => "Deltacom",
            TopologyKind::Stress => "Stress",
        }
    }
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Role of a node in the edge-caching scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeRole {
    /// Gateway to the origin server, which permanently stores the catalog.
    Origin,
    /// Edge node: receives user requests and hosts a cache.
    Edge,
    /// Internal router: forwards only.
    Internal,
}

/// Errors from topology construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopoError {
    /// The requested `(nodes, links)` pair cannot form the required shape.
    InvalidShape(String),
    /// An edge-list file could not be parsed.
    Parse(String),
}

impl fmt::Display for TopoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopoError::InvalidShape(msg) => write!(f, "invalid topology shape: {msg}"),
            TopoError::Parse(msg) => write!(f, "edge-list parse error: {msg}"),
        }
    }
}

impl std::error::Error for TopoError {}

/// A network topology with link costs, link capacities, and node roles.
///
/// Each undirected ISP link is modelled as two directed edges with
/// independently drawn costs (`w_uv` need not equal `w_vu`, §2.1).
/// Capacities default to `f64::INFINITY`; use
/// [`Topology::set_uniform_capacity`] and
/// [`Topology::augment_origin_paths`] to apply the paper's capacity model.
#[derive(Clone, Debug)]
pub struct Topology {
    /// The directed graph (two directed edges per physical link).
    pub graph: DiGraph,
    /// Routing cost per directed edge.
    pub cost: Vec<f64>,
    /// Capacity per directed edge (items or bits per unit time).
    pub capacity: Vec<f64>,
    /// The origin gateway node (degree 1 in the generated topologies).
    pub origin: NodeId,
    /// Edge nodes hosting caches and receiving requests.
    pub edge_nodes: Vec<NodeId>,
}

/// Default number of edge nodes designated by the generators, matching the
/// appendix-D setup (origin = lowest degree, next lowest-degree nodes are
/// edges).
pub const DEFAULT_EDGE_NODES: usize = 6;

impl Topology {
    /// Generates a seeded topology of the given kind with
    /// [`TopologyKind::edge_node_count`] edge nodes ([`DEFAULT_EDGE_NODES`]
    /// for the paper topologies).
    ///
    /// # Errors
    ///
    /// Propagates [`TopoError::InvalidShape`] (cannot happen for the
    /// built-in kinds).
    pub fn generate(kind: TopologyKind, seed: u64) -> Result<Self, TopoError> {
        let (n, m) = kind.size();
        Self::generate_custom(n, m, kind.edge_node_count(), seed)
    }

    /// Generates a seeded random connected topology with `n` nodes, `m`
    /// undirected links, and `edge_count` edge nodes.
    ///
    /// Construction: a random spanning tree over nodes `1..n` plus
    /// degree-preferential extra links (creating hub/periphery structure as
    /// in real ISP maps), with node `0` attached as a degree-1 origin
    /// gateway. Origin link costs are drawn from `[100, 200]`, core link
    /// costs from `[1, 20]` (per direction), following §6.
    ///
    /// # Errors
    ///
    /// [`TopoError::InvalidShape`] if `m < n − 1` (cannot be connected),
    /// `m` exceeds the simple-graph maximum, `n < 3`, or
    /// `edge_count ≥ n − 1`.
    pub fn generate_custom(
        n: usize,
        m: usize,
        edge_count: usize,
        seed: u64,
    ) -> Result<Self, TopoError> {
        if n < 3 {
            return Err(TopoError::InvalidShape("need at least 3 nodes".into()));
        }
        if m < n - 1 {
            return Err(TopoError::InvalidShape(format!(
                "{m} links cannot connect {n} nodes"
            )));
        }
        // Node 0 is the origin with exactly one link; the rest form a
        // simple graph on n−1 nodes.
        let core = n - 1;
        if m - 1 > core * (core - 1) / 2 {
            return Err(TopoError::InvalidShape(format!(
                "{m} links exceed the simple-graph maximum for {n} nodes"
            )));
        }
        if edge_count >= n - 1 {
            return Err(TopoError::InvalidShape(format!(
                "{edge_count} edge nodes do not fit in {n} nodes"
            )));
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6a63_725f_746f_706f); // "jcr_topo"
        let mut graph = DiGraph::with_capacity(n, 2 * m);
        let nodes = graph.add_nodes(n);
        let origin = nodes[0];

        // Undirected adjacency bookkeeping for the core (nodes 1..n), as
        // one flat row-major bit-per-pair matrix (a stress-scale n keeps
        // this to a single n² allocation instead of n separate rows).
        let mut undirected: Vec<(usize, usize)> = Vec::with_capacity(m);
        let mut adj = vec![false; n * n];
        let mut degree = vec![0usize; n];
        let connect = |u: usize,
                       v: usize,
                       undirected: &mut Vec<(usize, usize)>,
                       adj: &mut Vec<bool>,
                       degree: &mut Vec<usize>| {
            undirected.push((u, v));
            adj[u * n + v] = true;
            adj[v * n + u] = true;
            degree[u] += 1;
            degree[v] += 1;
        };

        // Random spanning tree over the core.
        for i in 2..n {
            let j = rng.gen_range(1..i);
            connect(i, j, &mut undirected, &mut adj, &mut degree);
        }
        // Extra links with degree-preferential endpoints (hubs emerge).
        let extra = m - 1 - (n - 2);
        let mut placed = 0;
        let mut attempts = 0;
        while placed < extra {
            attempts += 1;
            if attempts > 100 * (extra + 1) * n {
                return Err(TopoError::InvalidShape(
                    "failed to place extra links (graph too dense)".into(),
                ));
            }
            let u = weighted_node(&mut rng, &degree, 1, n);
            let v = rng.gen_range(1..n);
            if u == v || adj[u * n + v] {
                continue;
            }
            connect(u, v, &mut undirected, &mut adj, &mut degree);
            placed += 1;
        }
        // Attach the origin to a well-connected core node.
        let hub = weighted_node(&mut rng, &degree, 1, n);
        connect(0, hub, &mut undirected, &mut adj, &mut degree);

        // Materialize directed edges with costs.
        let mut cost = Vec::with_capacity(2 * m);
        for &(u, v) in &undirected {
            let origin_link = u == 0 || v == 0;
            let range = if origin_link { 100.0..200.0 } else { 1.0..20.0 };
            graph.add_edge(nodes[u], nodes[v]);
            cost.push(rng.gen_range(range.clone()));
            graph.add_edge(nodes[v], nodes[u]);
            cost.push(rng.gen_range(range));
        }
        let capacity = vec![f64::INFINITY; graph.edge_count()];

        // Edge nodes: the lowest-degree core nodes (ties by id), excluding
        // the origin's attachment hub so edges sit away from the gateway.
        let mut candidates: Vec<usize> = (1..n).filter(|&v| v != hub).collect();
        candidates.sort_by_key(|&v| (degree[v], v));
        let edge_nodes: Vec<NodeId> = candidates
            .into_iter()
            .take(edge_count)
            .map(|v| nodes[v])
            .collect();

        debug_assert!(graph.is_weakly_connected());
        Ok(Topology {
            graph,
            cost,
            capacity,
            origin,
            edge_nodes,
        })
    }

    /// Parses a plain-text edge list.
    ///
    /// Format, one record per line (`#` comments allowed):
    ///
    /// ```text
    /// origin <node>
    /// edge <node>
    /// link <u> <v> <cost_uv> <cost_vu> [capacity]
    /// ```
    ///
    /// Nodes are dense indices starting at 0. Each `link` line creates two
    /// directed edges; capacity defaults to infinity.
    ///
    /// # Errors
    ///
    /// [`TopoError::Parse`] on malformed lines, missing `origin`, or
    /// out-of-range node references.
    pub fn from_edge_list(text: &str) -> Result<Self, TopoError> {
        let mut links: Vec<(usize, usize, f64, f64, f64)> = Vec::new();
        let mut origin: Option<usize> = None;
        let mut edges_decl: Vec<usize> = Vec::new();
        let mut max_node = 0usize;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            // Empty lines are filtered above; an empty keyword can only
            // mean that invariant broke, and falls through to the
            // unknown-keyword parse error instead of panicking.
            let keyword = parts.next().unwrap_or_default();
            let mut next_usize = |what: &str| -> Result<usize, TopoError> {
                parts
                    .next()
                    .ok_or_else(|| {
                        TopoError::Parse(format!("line {}: missing {what}", lineno + 1))
                    })?
                    .parse()
                    .map_err(|_| TopoError::Parse(format!("line {}: bad {what}", lineno + 1)))
            };
            match keyword {
                "origin" => origin = Some(next_usize("origin node")?),
                "edge" => edges_decl.push(next_usize("edge node")?),
                "link" => {
                    let u = next_usize("u")?;
                    let v = next_usize("v")?;
                    let rest: Vec<f64> = parts
                        .map(|t| {
                            t.parse().map_err(|_| {
                                TopoError::Parse(format!("line {}: bad number", lineno + 1))
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    if rest.len() < 2 || rest.len() > 3 {
                        return Err(TopoError::Parse(format!(
                            "line {}: expected cost_uv cost_vu [capacity]",
                            lineno + 1
                        )));
                    }
                    let cap = rest.get(2).copied().unwrap_or(f64::INFINITY);
                    max_node = max_node.max(u).max(v);
                    links.push((u, v, rest[0], rest[1], cap));
                }
                other => {
                    return Err(TopoError::Parse(format!(
                        "line {}: unknown keyword {other:?}",
                        lineno + 1
                    )))
                }
            }
        }
        let origin =
            origin.ok_or_else(|| TopoError::Parse("missing `origin` declaration".into()))?;
        max_node = max_node
            .max(origin)
            .max(edges_decl.iter().copied().max().unwrap_or(0));

        let mut graph = DiGraph::with_capacity(max_node + 1, 2 * links.len());
        let nodes = graph.add_nodes(max_node + 1);
        let mut cost = Vec::new();
        let mut capacity = Vec::new();
        for (u, v, cuv, cvu, cap) in links {
            graph.add_edge(nodes[u], nodes[v]);
            cost.push(cuv);
            capacity.push(cap);
            graph.add_edge(nodes[v], nodes[u]);
            cost.push(cvu);
            capacity.push(cap);
        }
        Ok(Topology {
            graph,
            cost,
            capacity,
            origin: nodes[origin],
            edge_nodes: edges_decl.into_iter().map(|v| nodes[v]).collect(),
        })
    }

    /// Role of a node.
    pub fn role(&self, v: NodeId) -> NodeRole {
        if v == self.origin {
            NodeRole::Origin
        } else if self.edge_nodes.contains(&v) {
            NodeRole::Edge
        } else {
            NodeRole::Internal
        }
    }

    /// Sets every link's capacity to `kappa` (the paper's default is 0.7 %
    /// of the total request rate).
    pub fn set_uniform_capacity(&mut self, kappa: f64) {
        for c in &mut self.capacity {
            *c = kappa;
        }
    }

    /// Augments capacities along a cycle-free origin→edge path per edge
    /// node by that node's total demand, so every request can fall back to
    /// the origin server (the paper's feasibility guarantee, §6).
    ///
    /// The paper specifies only "a cycle-free path", so the augmented path
    /// is a seeded random simple path (randomized DFS), which generally
    /// differs from the least-cost path — cost-greedy routings (e.g. the
    /// shortest-path baselines) can therefore still congest links the
    /// augmentation did not widen, exactly as in the paper's evaluation.
    ///
    /// `demand[k]` is the total request rate of `edge_nodes[k]`.
    ///
    /// # Errors
    ///
    /// [`TopoError::InvalidShape`] when an edge node is unreachable from
    /// the origin — possible for hand-written
    /// [`Topology::from_edge_list`] inputs, never for generated
    /// topologies.
    ///
    /// # Panics
    ///
    /// Panics if `demand.len() != edge_nodes.len()` (a caller bug, not a
    /// data error).
    pub fn augment_origin_paths(&mut self, demand: &[f64]) -> Result<(), TopoError> {
        assert_eq!(
            demand.len(),
            self.edge_nodes.len(),
            "one demand per edge node"
        );
        for (k, &e_node) in self.edge_nodes.iter().enumerate() {
            let path = self
                .random_simple_path(self.origin, e_node, k as u64)
                .ok_or_else(|| {
                    TopoError::InvalidShape(format!(
                        "edge node n{} unreachable from the origin",
                        e_node.index()
                    ))
                })?;
            for e in path {
                self.capacity[e.index()] += demand[k];
            }
        }
        Ok(())
    }

    /// A seeded random simple `src → dst` path (randomized DFS).
    fn random_simple_path(
        &self,
        src: NodeId,
        dst: NodeId,
        seed: u64,
    ) -> Option<Vec<jcr_graph::EdgeId>> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6175_676d_656e_7421);
        let n = self.graph.node_count();
        let mut visited = vec![false; n];
        let mut parent: Vec<Option<jcr_graph::EdgeId>> = vec![None; n];
        let mut stack = vec![src];
        visited[src.index()] = true;
        while let Some(v) = stack.pop() {
            if v == dst {
                let mut edges = Vec::new();
                let mut cur = dst;
                while let Some(e) = parent[cur.index()] {
                    edges.push(e);
                    cur = self.graph.src(e);
                }
                edges.reverse();
                return Some(edges);
            }
            let mut out: Vec<jcr_graph::EdgeId> = self.graph.out_edges(v).to_vec();
            // Fisher–Yates shuffle for a random neighbour order.
            for i in (1..out.len()).rev() {
                let j = rng.gen_range(0..=i);
                out.swap(i, j);
            }
            for e in out {
                let w = self.graph.dst(e);
                if !visited[w.index()] {
                    visited[w.index()] = true;
                    parent[w.index()] = Some(e);
                    stack.push(w);
                }
            }
        }
        None
    }

    /// Renders the topology in Graphviz DOT format, colouring the origin
    /// red, edge nodes blue, and internal nodes grey (mirroring the
    /// paper's Fig. 3 legend). Each physical link is drawn once with its
    /// two directed costs.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        // `fmt::Write` into a `String` is infallible; the expects below
        // document that invariant rather than a reachable failure.
        let mut out = String::from("graph topology {\n  layout=neato;\n  overlap=false;\n");
        for v in self.graph.nodes() {
            let (color, shape) = match self.role(v) {
                NodeRole::Origin => ("red", "doublecircle"),
                NodeRole::Edge => ("blue", "circle"),
                NodeRole::Internal => ("grey", "circle"),
            };
            writeln!(out, "  n{} [color={color}, shape={shape}];", v.index())
                .expect("write to string");
        }
        // Draw each undirected pair once; directed costs as the label.
        let mut seen = vec![false; self.graph.edge_count()];
        for e in self.graph.edges() {
            if seen[e.index()] {
                continue;
            }
            let (u, v) = self.graph.endpoints(e);
            let back = self.graph.find_edge(v, u);
            if let Some(b) = back {
                seen[b.index()] = true;
            }
            let label = match back {
                Some(b) => format!("{:.0}/{:.0}", self.cost[e.index()], self.cost[b.index()]),
                None => format!("{:.0}", self.cost[e.index()]),
            };
            writeln!(
                out,
                "  n{} -- n{} [label=\"{label}\"];",
                u.index(),
                v.index()
            )
            .expect("write to string");
        }
        out.push_str("}\n");
        out
    }

    /// Structural statistics: undirected degree distribution (per node,
    /// counting each physical link once), cost-weighted diameter over
    /// finite pairs, and mean origin→edge least cost — the quantities
    /// Appendix D.4 relates to performance ("higher cost or congestion if
    /// the size is larger or the edge nodes are more scattered").
    pub fn stats(&self) -> TopologyStats {
        let degrees: Vec<usize> = self
            .graph
            .nodes()
            .map(|v| self.graph.out_degree(v))
            .collect();
        // Stream one Dijkstra row at a time through a shared scratch: the
        // diameter needs only the running maximum, so even a stress-scale
        // topology never materializes the |V|² distance matrix here.
        let mut scratch = shortest::DijkstraScratch::new();
        let mut diameter = 0.0f64;
        let mut origin_edge_sum = 0.0f64;
        for v in self.graph.nodes() {
            shortest::dijkstra_filtered_into(&self.graph, v, &self.cost, |_| true, &mut scratch);
            for &d in scratch.dists() {
                if d.is_finite() {
                    diameter = diameter.max(d);
                }
            }
            if v == self.origin {
                origin_edge_sum = self
                    .edge_nodes
                    .iter()
                    .map(|&w| scratch.dist(w))
                    .filter(|d| d.is_finite())
                    .sum();
            }
        }
        let mean_origin_edge = if self.edge_nodes.is_empty() {
            0.0
        } else {
            origin_edge_sum / self.edge_nodes.len() as f64
        };
        TopologyStats {
            degrees,
            diameter,
            mean_origin_edge_cost: mean_origin_edge,
        }
    }

    /// Total demand-weighted least cost of serving everything from the
    /// origin (a simple upper-bound reference for experiments).
    pub fn origin_only_cost(&self, demand: &[f64]) -> f64 {
        let tree = shortest::dijkstra(&self.graph, self.origin, &self.cost);
        self.edge_nodes
            .iter()
            .zip(demand)
            .map(|(&v, d)| tree.dist(v) * d)
            .sum()
    }
}

/// Structural statistics of a topology (see [`Topology::stats`]).
#[derive(Clone, Debug)]
pub struct TopologyStats {
    /// Out-degree per node (equals the undirected link count per node).
    pub degrees: Vec<usize>,
    /// Largest finite pairwise least cost.
    pub diameter: f64,
    /// Mean least cost from the origin to the edge nodes.
    pub mean_origin_edge_cost: f64,
}

impl TopologyStats {
    /// Maximum node degree.
    pub fn max_degree(&self) -> usize {
        self.degrees.iter().copied().max().unwrap_or(0)
    }

    /// Mean node degree.
    pub fn mean_degree(&self) -> f64 {
        if self.degrees.is_empty() {
            0.0
        } else {
            self.degrees.iter().sum::<usize>() as f64 / self.degrees.len() as f64
        }
    }
}

/// Samples a node index in `[lo, hi)` with probability proportional to
/// `degree + 1`.
fn weighted_node<R: Rng>(rng: &mut R, degree: &[usize], lo: usize, hi: usize) -> usize {
    let total: usize = degree[lo..hi].iter().map(|d| d + 1).sum();
    let mut pick = rng.gen_range(0..total);
    for (v, d) in degree.iter().enumerate().take(hi).skip(lo) {
        let w = d + 1;
        if pick < w {
            return v;
        }
        pick -= w;
    }
    hi - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_published_sizes() {
        for kind in [
            TopologyKind::Abovenet,
            TopologyKind::Abvt,
            TopologyKind::Tinet,
            TopologyKind::Deltacom,
        ] {
            let t = Topology::generate(kind, 7).unwrap();
            let (n, m) = kind.size();
            assert_eq!(t.graph.node_count(), n, "{kind}");
            assert_eq!(t.graph.edge_count(), 2 * m, "{kind}");
            assert!(t.graph.is_weakly_connected(), "{kind}");
            assert_eq!(t.graph.degree(t.origin), 2, "{kind} origin degree");
            assert_eq!(t.edge_nodes.len(), DEFAULT_EDGE_NODES);
            assert!(!t.edge_nodes.contains(&t.origin));
        }
    }

    #[test]
    fn stress_family_generates_at_scale() {
        let t = Topology::generate(TopologyKind::Stress, 9).unwrap();
        assert_eq!(t.graph.node_count(), 1000);
        assert_eq!(t.graph.edge_count(), 20_000);
        assert!(t.graph.is_weakly_connected());
        assert_eq!(t.edge_nodes.len(), 64);
        assert_eq!(t.graph.degree(t.origin), 2);
        assert!(!t.edge_nodes.contains(&t.origin));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Topology::generate(TopologyKind::Abovenet, 5).unwrap();
        let b = Topology::generate(TopologyKind::Abovenet, 5).unwrap();
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.edge_nodes, b.edge_nodes);
        let c = Topology::generate(TopologyKind::Abovenet, 6).unwrap();
        assert_ne!(a.cost, c.cost);
    }

    #[test]
    fn cost_model_matches_paper() {
        let t = Topology::generate(TopologyKind::Abovenet, 11).unwrap();
        for e in t.graph.edges() {
            let (u, v) = t.graph.endpoints(e);
            let c = t.cost[e.index()];
            if u == t.origin || v == t.origin {
                assert!((100.0..200.0).contains(&c), "origin link cost {c}");
            } else {
                assert!((1.0..20.0).contains(&c), "core link cost {c}");
            }
        }
    }

    #[test]
    fn invalid_shapes_rejected() {
        assert!(matches!(
            Topology::generate_custom(2, 5, 1, 0),
            Err(TopoError::InvalidShape(_))
        ));
        assert!(matches!(
            Topology::generate_custom(10, 5, 3, 0),
            Err(TopoError::InvalidShape(_))
        ));
        assert!(matches!(
            Topology::generate_custom(5, 100, 2, 0),
            Err(TopoError::InvalidShape(_))
        ));
        assert!(matches!(
            Topology::generate_custom(5, 5, 4, 0),
            Err(TopoError::InvalidShape(_))
        ));
    }

    #[test]
    fn capacity_model() {
        let mut t = Topology::generate(TopologyKind::Abovenet, 3).unwrap();
        t.set_uniform_capacity(10.0);
        assert!(t.capacity.iter().all(|&c| c == 10.0));
        let demand = vec![5.0; t.edge_nodes.len()];
        t.augment_origin_paths(&demand).unwrap();
        // The origin's outgoing link carries every fallback path.
        let out = t.graph.out_edges(t.origin)[0];
        assert!(t.capacity[out.index()] >= 10.0 + 5.0 * t.edge_nodes.len() as f64 - 1e-9);
    }

    #[test]
    fn edge_list_round_trip() {
        let text = "\
# tiny triangle
origin 0
edge 2
link 0 1 100 150
link 1 2 5 6 2.5
";
        let t = Topology::from_edge_list(text).unwrap();
        assert_eq!(t.graph.node_count(), 3);
        assert_eq!(t.graph.edge_count(), 4);
        assert_eq!(t.origin.index(), 0);
        assert_eq!(t.edge_nodes.len(), 1);
        assert_eq!(t.cost, vec![100.0, 150.0, 5.0, 6.0]);
        assert_eq!(t.capacity[2], 2.5);
        assert!(t.capacity[0].is_infinite());
        assert_eq!(t.role(t.origin), NodeRole::Origin);
        assert_eq!(t.role(t.edge_nodes[0]), NodeRole::Edge);
        assert_eq!(t.role(NodeId::new(1)), NodeRole::Internal);
    }

    #[test]
    fn edge_list_errors() {
        assert!(matches!(
            Topology::from_edge_list("link 0 1 5 5"),
            Err(TopoError::Parse(_))
        ));
        assert!(matches!(
            Topology::from_edge_list("origin 0\nlink 0 1 5"),
            Err(TopoError::Parse(_))
        ));
        assert!(matches!(
            Topology::from_edge_list("origin 0\nfrobnicate 1"),
            Err(TopoError::Parse(_))
        ));
    }

    #[test]
    fn stats_are_consistent() {
        let t = Topology::generate(TopologyKind::Abovenet, 4).unwrap();
        let stats = t.stats();
        assert_eq!(stats.degrees.len(), 23);
        // 31 undirected links → mean degree 2·31/23.
        assert!((stats.mean_degree() - 2.0 * 31.0 / 23.0).abs() < 1e-9);
        assert_eq!(stats.degrees[t.origin.index()], 1);
        assert!(
            stats.max_degree() >= 3,
            "preferential attachment creates hubs"
        );
        assert!(stats.diameter > 100.0, "origin link dominates the diameter");
        assert!(stats.mean_origin_edge_cost > 100.0);
        assert!(stats.mean_origin_edge_cost <= stats.diameter);
    }

    #[test]
    fn dot_export_shape() {
        let t = Topology::generate(TopologyKind::Abovenet, 4).unwrap();
        let dot = t.to_dot();
        assert!(dot.starts_with("graph topology {"));
        assert!(dot.ends_with("}\n"));
        // One node statement per node, one edge statement per physical link.
        assert_eq!(dot.matches("shape=").count(), 23);
        assert_eq!(dot.matches(" -- ").count(), 31);
        assert_eq!(dot.matches("doublecircle").count(), 1);
    }

    #[test]
    fn origin_only_cost_is_positive() {
        let t = Topology::generate(TopologyKind::Tinet, 2).unwrap();
        let demand = vec![1.0; t.edge_nodes.len()];
        assert!(t.origin_only_cost(&demand) > 100.0);
    }
}
