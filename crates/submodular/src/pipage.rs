//! Pipage rounding of fractional placements (the paper's Eqs. (8)–(9)).
//!
//! Given a fractional solution `x ∈ [0,1]^n` whose coordinates are grouped
//! (one group per cache node) with a per-group mass budget, and an
//! objective that is *linear in each coordinate* with two same-group
//! coordinates never interacting (true for the paper's `F_RNR` and
//! `F_{r,f}`: same-node coordinates belong to different items), pipage
//! rounding produces an integral solution without decreasing the
//! objective: repeatedly pick two fractional coordinates in the same
//! group and shift mass toward the one with the larger partial
//! derivative, preserving their sum (capped at 1), until at most nothing
//! fractional remains.

/// Tolerance for considering a coordinate integral.
pub const INT_TOL: f64 = 1e-6;

/// Rounds `x` to an integral solution in place.
///
/// * `groups[g]` — the coordinate indices of group `g`; a coordinate must
///   appear in at most one group.
/// * `capacity[g]` — the group's mass budget (`Σ_{i∈g} x_i ≤ capacity[g]`);
///   before pairing, each group is *saturated*: fractional coordinates are
///   raised (largest gradient first) until the group's mass is
///   `min(capacity, |group|)`, which is WLOG for monotone objectives
///   (Lemma 4.3) and guarantees full integrality.
/// * `grad(i, x)` — the partial derivative `∂F/∂x_i` at `x`. It must not
///   depend on the other coordinate of the pair being rounded (which holds
///   when same-group coordinates never share an objective term).
///
/// Returns the number of pairing steps performed.
///
/// # Panics
///
/// Panics if a coordinate lies outside `[0, 1]` beyond tolerance.
pub fn pipage_round<G: FnMut(usize, &[f64]) -> f64>(
    x: &mut [f64],
    groups: &[Vec<usize>],
    capacity: &[f64],
    mut grad: G,
) -> usize {
    for &i in groups.iter().flatten() {
        assert!(
            x[i] >= -INT_TOL && x[i] <= 1.0 + INT_TOL,
            "coordinate {i} out of [0,1]: {}",
            x[i]
        );
        x[i] = x[i].clamp(0.0, 1.0);
    }
    let mut steps = 0;
    for (g, coords) in groups.iter().enumerate() {
        saturate_group(x, coords, capacity[g], &mut grad);
        loop {
            // Find two fractional coordinates in this group.
            let mut fracs = coords.iter().copied().filter(|&i| is_fractional(x[i]));
            let Some(i) = fracs.next() else { break };
            let Some(j) = fracs.next() else {
                // A single fractional coordinate can remain only when the
                // group is not saturated to an integral mass; snap it to
                // the nearer bound that does not increase mass beyond the
                // budget (for monotone objectives, rounding up is
                // preferred when the gradient is positive and capacity
                // allows).
                let gi = grad(i, x);
                let mass: f64 = coords.iter().map(|&k| x[k]).sum();
                let room = capacity[g] - (mass - x[i]);
                x[i] = if gi > 0.0 && room >= 1.0 - INT_TOL {
                    1.0
                } else {
                    0.0
                };
                break;
            };
            let (wi, wj) = (grad(i, x), grad(j, x));
            let sum = x[i] + x[j];
            let (hi, lo) = if wi >= wj { (i, j) } else { (j, i) };
            x[hi] = sum.min(1.0);
            x[lo] = sum - x[hi];
            snap(&mut x[hi]);
            snap(&mut x[lo]);
            steps += 1;
        }
    }
    steps
}

fn is_fractional(v: f64) -> bool {
    v > INT_TOL && v < 1.0 - INT_TOL
}

fn snap(v: &mut f64) {
    if *v <= INT_TOL {
        *v = 0.0;
    } else if *v >= 1.0 - INT_TOL {
        *v = 1.0;
    }
}

/// Raises fractional coordinates (largest gradient first) until the group
/// mass reaches `min(capacity, |group|)`.
fn saturate_group<G: FnMut(usize, &[f64]) -> f64>(
    x: &mut [f64],
    coords: &[usize],
    capacity: f64,
    grad: &mut G,
) {
    let target = capacity.min(coords.len() as f64);
    let mut mass: f64 = coords.iter().map(|&i| x[i]).sum();
    if mass >= target - INT_TOL {
        return;
    }
    // Sort candidates by gradient, descending.
    let mut order: Vec<usize> = coords.iter().copied().filter(|&i| x[i] < 1.0).collect();
    let mut grads: Vec<(usize, f64)> = order.drain(..).map(|i| (i, grad(i, x))).collect();
    grads.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    for (i, _) in grads {
        if mass >= target - INT_TOL {
            break;
        }
        let room = (1.0 - x[i]).min(target - mass);
        x[i] += room;
        mass += room;
        snap(&mut x[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_pairwise_toward_higher_gradient() {
        // Linear objective 3·x0 + 1·x1, one group, capacity 1.
        let mut x = vec![0.5, 0.5];
        let groups = vec![vec![0, 1]];
        pipage_round(&mut x, &groups, &[1.0], |i, _| [3.0, 1.0][i]);
        assert_eq!(x, vec![1.0, 0.0]);
    }

    #[test]
    fn caps_at_one_and_keeps_remainder() {
        // Both valuable, capacity 2: saturation should fill both to 1.
        let mut x = vec![0.7, 0.7];
        let groups = vec![vec![0, 1]];
        pipage_round(&mut x, &groups, &[2.0], |_, _| 1.0);
        assert_eq!(x, vec![1.0, 1.0]);
    }

    #[test]
    fn objective_never_decreases_on_linear_objectives() {
        use jcr_ctx::rng::{Rng, SeedableRng};
        let mut rng = jcr_ctx::rng::StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let n = rng.gen_range(2..8);
            let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..4.0)).collect();
            let cap = rng.gen_range(1..=n) as f64;
            let mut x: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
            // Scale into the capacity.
            let mass: f64 = x.iter().sum();
            if mass > cap {
                for v in &mut x {
                    *v *= cap / mass;
                }
            }
            let before: f64 = x.iter().zip(&weights).map(|(v, w)| v * w).sum();
            let groups = vec![(0..n).collect::<Vec<_>>()];
            pipage_round(&mut x, &groups, &[cap], |i, _| weights[i]);
            let after: f64 = x.iter().zip(&weights).map(|(v, w)| v * w).sum();
            assert!(after >= before - 1e-9, "after {after} < before {before}");
            // Integral and within capacity.
            assert!(x.iter().all(|&v| v == 0.0 || v == 1.0));
            assert!(x.iter().sum::<f64>() <= cap + 1e-9);
        }
    }

    #[test]
    fn multiple_groups_independent() {
        let mut x = vec![0.5, 0.5, 0.3, 0.9];
        let groups = vec![vec![0, 1], vec![2, 3]];
        let w = [1.0, 2.0, 5.0, 0.1];
        pipage_round(&mut x, &groups, &[1.0, 1.0], |i, _| w[i]);
        assert_eq!(x, vec![0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn already_integral_is_untouched() {
        let mut x = vec![1.0, 0.0, 1.0];
        let groups = vec![vec![0, 1, 2]];
        let steps = pipage_round(&mut x, &groups, &[2.0], |_, _| 1.0);
        assert_eq!(steps, 0);
        assert_eq!(x, vec![1.0, 0.0, 1.0]);
    }
}
