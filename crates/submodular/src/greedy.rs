//! The (lazy) greedy algorithm for monotone submodular maximization.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::constraint::Constraint;
use crate::Oracle;

#[derive(PartialEq)]
struct HeapEntry {
    gain: f64,
    element: usize,
    /// Number of accepted elements when this gain was computed.
    round: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .partial_cmp(&other.gain)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.element.cmp(&self.element))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Result of a greedy run.
#[derive(Clone, Debug)]
pub struct GreedyResult {
    /// Selected elements, in acceptance order.
    pub selected: Vec<usize>,
    /// Final objective value `f(S)`.
    pub value: f64,
}

/// Maximizes a monotone submodular [`Oracle`] under a downward-closed
/// [`Constraint`] with the *lazy* (accelerated) greedy algorithm.
///
/// Guarantees: 1/2-approximation under a matroid constraint
/// (Nemhauser–Wolsey–Fisher) and `1/(1+p)` under a `p`-independence system
/// (the paper's Theorem 5.2). Laziness exploits submodularity — a stale
/// marginal gain only over-estimates — so each round usually re-evaluates
/// a handful of elements instead of the whole ground set.
///
/// Elements with non-positive marginal gain are never selected (the
/// oracles here are monotone, so this only prunes zero-gain elements).
pub fn lazy_greedy<O: Oracle, C: Constraint>(oracle: &mut O, constraint: &mut C) -> GreedyResult {
    let n = oracle.ground_size();
    let mut heap = BinaryHeap::with_capacity(n);
    for e in 0..n {
        if constraint.can_add(e) {
            let g = oracle.gain(e);
            if g > 0.0 {
                heap.push(HeapEntry {
                    gain: g,
                    element: e,
                    round: 0,
                });
            }
        }
    }
    let mut selected = Vec::new();
    while let Some(top) = heap.pop() {
        if !constraint.can_add(top.element) {
            continue;
        }
        if top.round == selected.len() {
            // Gain is current: accept.
            oracle.insert(top.element);
            constraint.insert(top.element);
            selected.push(top.element);
        } else {
            // Stale: re-evaluate and re-queue.
            let g = oracle.gain(top.element);
            if g > 0.0 {
                heap.push(HeapEntry {
                    gain: g,
                    element: top.element,
                    round: selected.len(),
                });
            }
        }
    }
    GreedyResult {
        value: oracle.value(),
        selected,
    }
}

/// Plain (non-lazy) greedy; used to cross-check the lazy variant in tests
/// and as a reference implementation.
pub fn plain_greedy<O: Oracle, C: Constraint>(oracle: &mut O, constraint: &mut C) -> GreedyResult {
    let n = oracle.ground_size();
    let mut selected = Vec::new();
    loop {
        let mut best: Option<(usize, f64)> = None;
        for e in 0..n {
            if selected.contains(&e) || !constraint.can_add(e) {
                continue;
            }
            let g = oracle.gain(e);
            if g > 0.0 && best.is_none_or(|(_, bg)| g > bg) {
                best = Some((e, g));
            }
        }
        let Some((e, _)) = best else { break };
        oracle.insert(e);
        constraint.insert(e);
        selected.push(e);
    }
    GreedyResult {
        value: oracle.value(),
        selected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::WeightedCoverage;
    use crate::constraint::{PartitionMatroid, Unconstrained};

    /// Weighted-coverage instances are monotone submodular; see
    /// [`crate::brute`].
    fn coverage() -> WeightedCoverage {
        // 4 elements covering subsets of 5 points with weights.
        WeightedCoverage::new(
            vec![vec![0, 1], vec![1, 2, 3], vec![3, 4], vec![0, 4]],
            vec![5.0, 1.0, 3.0, 2.0, 4.0],
        )
    }

    #[test]
    fn lazy_matches_plain() {
        let mut o1 = coverage();
        let mut o2 = coverage();
        let mut c1 = PartitionMatroid::new(vec![0, 0, 1, 1], vec![1, 1]);
        let mut c2 = PartitionMatroid::new(vec![0, 0, 1, 1], vec![1, 1]);
        let lazy = lazy_greedy(&mut o1, &mut c1);
        let plain = plain_greedy(&mut o2, &mut c2);
        assert!((lazy.value - plain.value).abs() < 1e-12);
        assert_eq!(lazy.selected.len(), plain.selected.len());
    }

    #[test]
    fn unconstrained_takes_all_useful_elements() {
        let mut o = coverage();
        let mut c = Unconstrained;
        let r = lazy_greedy(&mut o, &mut c);
        // All points covered: total weight 15.
        assert!((r.value - 15.0).abs() < 1e-12);
    }

    #[test]
    fn respects_budgets() {
        let mut o = coverage();
        // All in one group, budget 1: picks the single best element.
        let mut c = PartitionMatroid::new(vec![0; 4], vec![1]);
        let r = lazy_greedy(&mut o, &mut c);
        assert_eq!(r.selected.len(), 1);
        // Best single: {3,4}=7 or {0,4}=9 or {0,1}=6 or {1,2,3}=7 → element 3.
        assert_eq!(r.selected[0], 3);
        assert!((r.value - 9.0).abs() < 1e-12);
    }

    #[test]
    fn half_approximation_on_random_instances() {
        use jcr_ctx::rng::{Rng, SeedableRng};
        let mut rng = jcr_ctx::rng::StdRng::seed_from_u64(99);
        for _ in 0..30 {
            let n_points = rng.gen_range(3..7);
            let n_elems = rng.gen_range(2..7);
            let sets: Vec<Vec<usize>> = (0..n_elems)
                .map(|_| (0..n_points).filter(|_| rng.gen_bool(0.5)).collect())
                .collect();
            let weights: Vec<f64> = (0..n_points).map(|_| rng.gen_range(0.1..5.0)).collect();
            let groups: Vec<usize> = (0..n_elems).map(|_| rng.gen_range(0..2)).collect();
            let budgets = vec![rng.gen_range(1..3), rng.gen_range(1..3)];

            let mut oracle = WeightedCoverage::new(sets.clone(), weights.clone());
            let mut constraint = PartitionMatroid::new(groups.clone(), budgets.clone());
            let greedy = lazy_greedy(&mut oracle, &mut constraint);

            let opt = crate::brute::brute_force_best(
                || WeightedCoverage::new(sets.clone(), weights.clone()),
                || PartitionMatroid::new(groups.clone(), budgets.clone()),
                n_elems,
            );
            assert!(
                greedy.value >= 0.5 * opt - 1e-9,
                "greedy {} < 1/2 · OPT {}",
                greedy.value,
                opt
            );
        }
    }
}
