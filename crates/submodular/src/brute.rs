//! Brute-force maximization and a reference submodular oracle, used to
//! validate approximation guarantees in tests.

use crate::constraint::Constraint;
use crate::Oracle;

/// Weighted coverage function: `f(S) = Σ_{points covered by S} weight`.
///
/// Weighted coverage is the canonical monotone submodular function; it
/// serves as a reference oracle for testing the greedy and pipage
/// machinery.
#[derive(Clone, Debug)]
pub struct WeightedCoverage {
    sets: Vec<Vec<usize>>,
    weights: Vec<f64>,
    covered: Vec<bool>,
    value: f64,
}

impl WeightedCoverage {
    /// Creates the oracle from each element's covered points and the point
    /// weights. Duplicate points within a set are deduplicated (marginal
    /// gains must count each point once).
    ///
    /// # Panics
    ///
    /// Panics if a set references an out-of-range point or a weight is
    /// negative.
    pub fn new(mut sets: Vec<Vec<usize>>, weights: Vec<f64>) -> Self {
        assert!(
            sets.iter().flatten().all(|&p| p < weights.len()),
            "point out of range"
        );
        assert!(weights.iter().all(|&w| w >= 0.0), "negative weight");
        for set in &mut sets {
            set.sort_unstable();
            set.dedup();
        }
        let covered = vec![false; weights.len()];
        WeightedCoverage {
            sets,
            weights,
            covered,
            value: 0.0,
        }
    }
}

impl Oracle for WeightedCoverage {
    fn ground_size(&self) -> usize {
        self.sets.len()
    }

    fn gain(&self, element: usize) -> f64 {
        self.sets[element]
            .iter()
            .filter(|&&p| !self.covered[p])
            .map(|&p| self.weights[p])
            .sum()
    }

    fn insert(&mut self, element: usize) {
        for &p in &self.sets[element] {
            if !self.covered[p] {
                self.covered[p] = true;
                self.value += self.weights[p];
            }
        }
    }

    fn value(&self) -> f64 {
        self.value
    }
}

/// Exhaustively evaluates every feasible subset of `0..n` and returns the
/// best objective value. Factories produce fresh oracle/constraint state
/// per subset. Exponential — tests only.
pub fn brute_force_best<O, C, FO, FC>(make_oracle: FO, make_constraint: FC, n: usize) -> f64
where
    O: Oracle,
    C: Constraint,
    FO: Fn() -> O,
    FC: Fn() -> C,
{
    assert!(n <= 20, "brute force limited to 20 elements");
    let mut best = f64::NEG_INFINITY;
    'subsets: for mask in 0u32..(1 << n) {
        let mut oracle = make_oracle();
        let mut constraint = make_constraint();
        for e in 0..n {
            if mask & (1 << e) != 0 {
                if !constraint.can_add(e) {
                    continue 'subsets;
                }
                constraint.insert(e);
                oracle.insert(e);
            }
        }
        best = best.max(oracle.value());
    }
    best
}

/// Checks the submodularity inequality
/// `f(A ∪ {e}) − f(A) ≥ f(B ∪ {e}) − f(B)` for all `A ⊆ B ⊆ [n]`, `e ∉ B`,
/// by exhaustive enumeration. Exponential — tests only.
pub fn is_submodular<O, F>(make_oracle: F, n: usize, tol: f64) -> bool
where
    O: Oracle,
    F: Fn() -> O,
{
    assert!(n <= 12, "submodularity check limited to 12 elements");
    let value_of = |mask: u32| {
        let mut o = make_oracle();
        for e in 0..n {
            if mask & (1 << e) != 0 {
                o.insert(e);
            }
        }
        o.value()
    };
    let values: Vec<f64> = (0u32..(1 << n)).map(value_of).collect();
    for b in 0u32..(1 << n) {
        // Enumerate subsets a of b.
        let mut a = b;
        loop {
            for e in 0..n {
                let bit = 1u32 << e;
                if b & bit == 0 {
                    let ga = values[(a | bit) as usize] - values[a as usize];
                    let gb = values[(b | bit) as usize] - values[b as usize];
                    if ga < gb - tol {
                        return false;
                    }
                }
            }
            if a == 0 {
                break;
            }
            a = (a - 1) & b;
        }
    }
    true
}

/// Checks monotonicity `f(A) ≤ f(A ∪ {e})` exhaustively. Tests only.
pub fn is_monotone<O, F>(make_oracle: F, n: usize, tol: f64) -> bool
where
    O: Oracle,
    F: Fn() -> O,
{
    assert!(n <= 12);
    let value_of = |mask: u32| {
        let mut o = make_oracle();
        for e in 0..n {
            if mask & (1 << e) != 0 {
                o.insert(e);
            }
        }
        o.value()
    };
    for a in 0u32..(1 << n) {
        let va = value_of(a);
        for e in 0..n {
            let bit = 1u32 << e;
            if a & bit == 0 && value_of(a | bit) < va - tol {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Unconstrained;

    #[test]
    fn coverage_is_monotone_submodular() {
        let make = || {
            WeightedCoverage::new(
                vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]],
                vec![1.0, 2.0, 3.0, 4.0],
            )
        };
        assert!(is_monotone(make, 4, 1e-12));
        assert!(is_submodular(make, 4, 1e-12));
    }

    #[test]
    fn brute_force_finds_exact_optimum() {
        let make_oracle =
            || WeightedCoverage::new(vec![vec![0], vec![1], vec![0, 1]], vec![2.0, 3.0]);
        let best = brute_force_best(make_oracle, || Unconstrained, 3);
        assert!((best - 5.0).abs() < 1e-12);
    }
}
