//! Feasibility constraints for greedy selection.

/// A downward-closed feasibility constraint over ground-set elements.
///
/// Implementations keep their own incremental state mirroring the selected
/// set, in lockstep with the oracle.
pub trait Constraint {
    /// Whether `element` can be added to the current selection.
    fn can_add(&self, element: usize) -> bool;

    /// Commits `element` to the selection.
    ///
    /// # Panics
    ///
    /// May panic if `can_add(element)` is false.
    fn insert(&mut self, element: usize);
}

/// A partition matroid: elements are grouped, and group `g` admits at most
/// `budget[g]` selected elements.
///
/// This models the paper's cache-capacity constraint (5b) for equal-sized
/// items: element `(v, i)` belongs to group `v` with budget `c_v`.
#[derive(Clone, Debug)]
pub struct PartitionMatroid {
    group_of: Vec<usize>,
    budget: Vec<usize>,
    used: Vec<usize>,
}

impl PartitionMatroid {
    /// Creates the matroid from each element's group and per-group budgets.
    ///
    /// # Panics
    ///
    /// Panics if an element references an out-of-range group.
    pub fn new(group_of: Vec<usize>, budget: Vec<usize>) -> Self {
        assert!(
            group_of.iter().all(|&g| g < budget.len()),
            "element group out of range"
        );
        let used = vec![0; budget.len()];
        PartitionMatroid {
            group_of,
            budget,
            used,
        }
    }

    /// Remaining budget of the group containing `element`.
    pub fn remaining(&self, element: usize) -> usize {
        let g = self.group_of[element];
        self.budget[g] - self.used[g]
    }
}

impl Constraint for PartitionMatroid {
    fn can_add(&self, element: usize) -> bool {
        let g = self.group_of[element];
        self.used[g] < self.budget[g]
    }

    fn insert(&mut self, element: usize) {
        let g = self.group_of[element];
        assert!(self.used[g] < self.budget[g], "group budget exhausted");
        self.used[g] += 1;
    }
}

/// A grouped knapsack: element `e` has size `size[e]` and group `g` admits
/// selections of total size at most `capacity[g]`.
///
/// For item sizes in `[b_min, b_max]` this is a `⌈b_max/b_min⌉`-independence
/// system (the paper's Lemma 5.1), under which greedy achieves a
/// `1/(1+p)`-approximation (Theorem 5.2).
#[derive(Clone, Debug)]
pub struct Knapsack {
    group_of: Vec<usize>,
    size: Vec<f64>,
    capacity: Vec<f64>,
    used: Vec<f64>,
}

impl Knapsack {
    /// Creates the constraint from element groups, element sizes, and
    /// per-group capacities.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch, a size is non-positive, or a group is
    /// out of range.
    pub fn new(group_of: Vec<usize>, size: Vec<f64>, capacity: Vec<f64>) -> Self {
        assert_eq!(group_of.len(), size.len(), "one size per element");
        assert!(size.iter().all(|&s| s > 0.0), "sizes must be positive");
        assert!(
            group_of.iter().all(|&g| g < capacity.len()),
            "element group out of range"
        );
        let used = vec![0.0; capacity.len()];
        Knapsack {
            group_of,
            size,
            capacity,
            used,
        }
    }

    /// The independence parameter `p = ⌈b_max / b_min⌉` of Lemma 5.1.
    pub fn independence_parameter(&self) -> usize {
        let b_max = self.size.iter().copied().fold(0.0f64, f64::max);
        let b_min = self.size.iter().copied().fold(f64::INFINITY, f64::min);
        if b_min.is_finite() && b_min > 0.0 {
            (b_max / b_min).ceil() as usize
        } else {
            1
        }
    }
}

impl Constraint for Knapsack {
    fn can_add(&self, element: usize) -> bool {
        let g = self.group_of[element];
        self.used[g] + self.size[element] <= self.capacity[g] + 1e-9
    }

    fn insert(&mut self, element: usize) {
        let g = self.group_of[element];
        self.used[g] += self.size[element];
    }
}

/// The trivial constraint admitting everything (cardinality-unbounded).
#[derive(Clone, Copy, Debug, Default)]
pub struct Unconstrained;

impl Constraint for Unconstrained {
    fn can_add(&self, _element: usize) -> bool {
        true
    }

    fn insert(&mut self, _element: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_budgets_enforced() {
        // Elements 0,1 in group 0 (budget 1); element 2 in group 1 (budget 2).
        let mut m = PartitionMatroid::new(vec![0, 0, 1], vec![1, 2]);
        assert!(m.can_add(0));
        m.insert(0);
        assert!(!m.can_add(1));
        assert!(m.can_add(2));
        assert_eq!(m.remaining(1), 0);
        assert_eq!(m.remaining(2), 2);
    }

    #[test]
    #[should_panic(expected = "budget exhausted")]
    fn partition_over_insert_panics() {
        let mut m = PartitionMatroid::new(vec![0, 0], vec![1]);
        m.insert(0);
        m.insert(1);
    }

    #[test]
    fn knapsack_sizes_enforced() {
        let mut k = Knapsack::new(vec![0, 0, 0], vec![2.0, 1.5, 1.0], vec![3.0]);
        assert!(k.can_add(0));
        k.insert(0); // used 2.0
        assert!(!k.can_add(1)); // 3.5 > 3
        assert!(k.can_add(2)); // 3.0 ≤ 3
        k.insert(2);
        assert!(!k.can_add(1));
    }

    #[test]
    fn knapsack_independence_parameter() {
        let k = Knapsack::new(vec![0, 0], vec![1.0, 4.5], vec![10.0]);
        assert_eq!(k.independence_parameter(), 5);
        let k = Knapsack::new(vec![0], vec![2.0], vec![10.0]);
        assert_eq!(k.independence_parameter(), 1);
    }

    #[test]
    fn unconstrained_admits_all() {
        let mut u = Unconstrained;
        assert!(u.can_add(123));
        u.insert(123);
        assert!(u.can_add(123));
    }
}
