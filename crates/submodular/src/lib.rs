//! Monotone submodular maximization toolkit.
//!
//! The paper's content-placement subproblems are maximizations of monotone
//! submodular cost-saving functions (`F_RNR` of Lemma 4.1 and `F_{r,f}` of
//! Lemma 5.3) subject to a partition-matroid constraint (equal-sized
//! chunks, one slot per cached item) or a *p*-independence constraint
//! (heterogeneous file sizes, Lemma 5.1). This crate provides the generic
//! machinery:
//!
//! * [`Oracle`] — incremental value oracles (marginal gains against a
//!   mutable state);
//! * [`constraint::Constraint`] with [`constraint::PartitionMatroid`]
//!   (per-node slot budgets) and [`constraint::Knapsack`] (per-node size
//!   budgets, a `⌈b_max/b_min⌉`-independence system);
//! * [`greedy::lazy_greedy`] — the accelerated greedy algorithm
//!   (1/2-approximation under a matroid, `1/(1+p)` under a
//!   *p*-independence system, Theorem 5.2);
//! * [`pipage::pipage_round`] — the per-group pipage rounding of the
//!   paper's Eqs. (8)–(9) that converts fractional placements into
//!   integral ones without decreasing the (componentwise-linear)
//!   objective;
//! * [`brute`] — exact brute-force maximization for testing approximation
//!   guarantees on small instances.

//! # Examples
//!
//! ```
//! use jcr_submodular::brute::WeightedCoverage;
//! use jcr_submodular::constraint::PartitionMatroid;
//! use jcr_submodular::greedy::lazy_greedy;
//!
//! // Two groups with one slot each; greedy picks the best element per group.
//! let mut oracle = WeightedCoverage::new(
//!     vec![vec![0], vec![1, 2], vec![0, 1], vec![2]],
//!     vec![3.0, 2.0, 4.0],
//! );
//! let mut constraint = PartitionMatroid::new(vec![0, 0, 1, 1], vec![1, 1]);
//! let result = lazy_greedy(&mut oracle, &mut constraint);
//! assert!(result.value >= 6.0); // at least {1,2} + {0,1} coverage
//! ```

pub mod brute;
pub mod constraint;
pub mod greedy;
pub mod pipage;

/// An incremental value oracle for a set function over the ground set
/// `0..ground_size()`.
///
/// The greedy algorithms query marginal gains many times per accepted
/// element, so the oracle keeps mutable state updated once per acceptance
/// instead of recomputing `f(S ∪ {e}) − f(S)` from scratch.
pub trait Oracle {
    /// Number of elements in the ground set.
    fn ground_size(&self) -> usize;

    /// Marginal gain of adding `element` to the current set.
    fn gain(&self, element: usize) -> f64;

    /// Commits `element` to the current set.
    fn insert(&mut self, element: usize);

    /// Current value `f(S)` of the committed set.
    fn value(&self) -> f64;
}
