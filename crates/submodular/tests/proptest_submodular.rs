//! Property-based tests for the submodular toolkit: approximation
//! guarantees against brute force and rounding invariants.

use proptest::prelude::*;

use jcr_submodular::brute::{brute_force_best, is_monotone, is_submodular, WeightedCoverage};
use jcr_submodular::constraint::{Constraint, Knapsack, PartitionMatroid};
use jcr_submodular::greedy::{lazy_greedy, plain_greedy};
use jcr_submodular::pipage::pipage_round;

#[derive(Debug, Clone)]
struct Coverage {
    sets: Vec<Vec<usize>>,
    weights: Vec<f64>,
}

fn random_coverage() -> impl Strategy<Value = Coverage> {
    (2usize..6, 2usize..7).prop_flat_map(|(n_points, n_elems)| {
        let sets = proptest::collection::vec(
            proptest::collection::vec(0..n_points, 0..n_points),
            n_elems..=n_elems,
        );
        let weights = proptest::collection::vec(0.0f64..5.0, n_points..=n_points);
        (sets, weights).prop_map(|(sets, weights)| Coverage { sets, weights })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Weighted coverage is always monotone submodular.
    #[test]
    fn coverage_is_monotone_submodular(cov in random_coverage()) {
        let n = cov.sets.len();
        let make = || WeightedCoverage::new(cov.sets.clone(), cov.weights.clone());
        prop_assert!(is_monotone(make, n, 1e-9));
        prop_assert!(is_submodular(make, n, 1e-9));
    }

    /// Greedy under a partition matroid achieves ≥ 1/2 · OPT.
    #[test]
    fn greedy_half_approximation(cov in random_coverage(), budget in 1usize..3) {
        let n = cov.sets.len();
        let groups: Vec<usize> = (0..n).map(|e| e % 2).collect();
        let budgets = vec![budget; 2];
        let mut oracle = WeightedCoverage::new(cov.sets.clone(), cov.weights.clone());
        let mut cons = PartitionMatroid::new(groups.clone(), budgets.clone());
        let greedy = lazy_greedy(&mut oracle, &mut cons);
        let opt = brute_force_best(
            || WeightedCoverage::new(cov.sets.clone(), cov.weights.clone()),
            || PartitionMatroid::new(groups.clone(), budgets.clone()),
            n,
        );
        prop_assert!(greedy.value >= 0.5 * opt - 1e-9,
            "greedy {} < OPT/2 = {}", greedy.value, opt / 2.0);
    }

    /// Greedy under a knapsack achieves ≥ OPT/(1+p) (Theorem 5.2).
    #[test]
    fn greedy_knapsack_approximation(cov in random_coverage(),
                                     sizes in proptest::collection::vec(1.0f64..4.0, 7),
                                     capacity in 2.0f64..8.0) {
        let n = cov.sets.len();
        let sizes: Vec<f64> = sizes[..n].to_vec();
        let make_cons = || Knapsack::new(vec![0; n], sizes.clone(), vec![capacity]);
        let p = make_cons().independence_parameter();
        let mut oracle = WeightedCoverage::new(cov.sets.clone(), cov.weights.clone());
        let mut cons = make_cons();
        let greedy = lazy_greedy(&mut oracle, &mut cons);
        let opt = brute_force_best(
            || WeightedCoverage::new(cov.sets.clone(), cov.weights.clone()),
            make_cons,
            n,
        );
        let bound = opt / (1.0 + p as f64);
        prop_assert!(greedy.value >= bound - 1e-9,
            "greedy {} < OPT/(1+{p}) = {bound}", greedy.value);
    }

    /// Lazy and plain greedy select sets of equal value.
    #[test]
    fn lazy_equals_plain(cov in random_coverage(), budget in 1usize..4) {
        let n = cov.sets.len();
        let groups: Vec<usize> = (0..n).map(|e| e % 3).collect();
        let budgets = vec![budget; 3];
        let mut o1 = WeightedCoverage::new(cov.sets.clone(), cov.weights.clone());
        let mut c1 = PartitionMatroid::new(groups.clone(), budgets.clone());
        let mut o2 = WeightedCoverage::new(cov.sets.clone(), cov.weights.clone());
        let mut c2 = PartitionMatroid::new(groups.clone(), budgets.clone());
        let lazy = lazy_greedy(&mut o1, &mut c1);
        let plain = plain_greedy(&mut o2, &mut c2);
        prop_assert!((lazy.value - plain.value).abs() < 1e-9);
    }

    /// Pipage rounding yields integral, capacity-respecting solutions and
    /// never decreases a linear objective.
    #[test]
    fn pipage_invariants(weights in proptest::collection::vec(0.0f64..5.0, 2..8),
                         fracs in proptest::collection::vec(0.0f64..1.0, 2..8),
                         cap in 1usize..5) {
        let n = weights.len().min(fracs.len());
        let weights = &weights[..n];
        let mut x: Vec<f64> = fracs[..n].to_vec();
        let cap = cap.min(n) as f64;
        let mass: f64 = x.iter().sum();
        if mass > cap {
            for v in &mut x { *v *= cap / mass; }
        }
        let before: f64 = x.iter().zip(weights).map(|(v, w)| v * w).sum();
        let groups = vec![(0..n).collect::<Vec<_>>()];
        pipage_round(&mut x, &groups, &[cap], |i, _| weights[i]);
        let after: f64 = x.iter().zip(weights).map(|(v, w)| v * w).sum();
        prop_assert!(after >= before - 1e-9);
        prop_assert!(x.iter().all(|&v| v == 0.0 || v == 1.0));
        prop_assert!(x.iter().sum::<f64>() <= cap + 1e-9);
    }
}

/// Knapsack feasibility is downward-closed: removing an element keeps the
/// remaining selection addable in some order.
#[test]
fn knapsack_downward_closed() {
    let mut k = Knapsack::new(vec![0, 0, 0], vec![1.0, 2.0, 3.0], vec![6.0]);
    assert!(k.can_add(0));
    k.insert(0);
    assert!(k.can_add(1));
    k.insert(1);
    assert!(k.can_add(2));
    k.insert(2);
    // Fresh instance: any subset of {0,1,2} is feasible in any order.
    for order in [[2, 1, 0], [1, 0, 2], [0, 2, 1]] {
        let mut k = Knapsack::new(vec![0, 0, 0], vec![1.0, 2.0, 3.0], vec![6.0]);
        for e in order {
            assert!(k.can_add(e));
            k.insert(e);
        }
    }
}
