//! Randomized property tests for the submodular toolkit: approximation
//! guarantees against brute force and rounding invariants, on cases
//! drawn from the in-tree seeded PRNG (same cases every run).

use jcr_ctx::rng::{Rng, SeedableRng, StdRng};
use jcr_submodular::brute::{brute_force_best, is_monotone, is_submodular, WeightedCoverage};
use jcr_submodular::constraint::{Constraint, Knapsack, PartitionMatroid};
use jcr_submodular::greedy::{lazy_greedy, plain_greedy};
use jcr_submodular::pipage::pipage_round;

const CASES: u64 = 64;

#[derive(Debug, Clone)]
struct Coverage {
    sets: Vec<Vec<usize>>,
    weights: Vec<f64>,
}

fn random_coverage(rng: &mut StdRng) -> Coverage {
    let n_points = rng.gen_range(2..6usize);
    let n_elems = rng.gen_range(2..7usize);
    let sets = (0..n_elems)
        .map(|_| {
            let len = rng.gen_range(0..n_points);
            (0..len).map(|_| rng.gen_range(0..n_points)).collect()
        })
        .collect();
    let weights = (0..n_points).map(|_| rng.gen_range(0.0..5.0)).collect();
    Coverage { sets, weights }
}

/// Weighted coverage is always monotone submodular.
#[test]
fn coverage_is_monotone_submodular() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7375_3031 + case);
        let cov = random_coverage(&mut rng);
        let n = cov.sets.len();
        let make = || WeightedCoverage::new(cov.sets.clone(), cov.weights.clone());
        assert!(is_monotone(make, n, 1e-9), "case {case}");
        assert!(is_submodular(make, n, 1e-9), "case {case}");
    }
}

/// Greedy under a partition matroid achieves ≥ 1/2 · OPT.
#[test]
fn greedy_half_approximation() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7375_3032 + case);
        let cov = random_coverage(&mut rng);
        let budget = rng.gen_range(1..3usize);
        let n = cov.sets.len();
        let groups: Vec<usize> = (0..n).map(|e| e % 2).collect();
        let budgets = vec![budget; 2];
        let mut oracle = WeightedCoverage::new(cov.sets.clone(), cov.weights.clone());
        let mut cons = PartitionMatroid::new(groups.clone(), budgets.clone());
        let greedy = lazy_greedy(&mut oracle, &mut cons);
        let opt = brute_force_best(
            || WeightedCoverage::new(cov.sets.clone(), cov.weights.clone()),
            || PartitionMatroid::new(groups.clone(), budgets.clone()),
            n,
        );
        assert!(
            greedy.value >= 0.5 * opt - 1e-9,
            "case {case}: greedy {} < OPT/2 = {}",
            greedy.value,
            opt / 2.0
        );
    }
}

/// Greedy under a knapsack achieves ≥ OPT/(1+p) (Theorem 5.2).
#[test]
fn greedy_knapsack_approximation() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7375_3033 + case);
        let cov = random_coverage(&mut rng);
        let n = cov.sets.len();
        let sizes: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..4.0)).collect();
        let capacity = rng.gen_range(2.0..8.0);
        let make_cons = || Knapsack::new(vec![0; n], sizes.clone(), vec![capacity]);
        let p = make_cons().independence_parameter();
        let mut oracle = WeightedCoverage::new(cov.sets.clone(), cov.weights.clone());
        let mut cons = make_cons();
        let greedy = lazy_greedy(&mut oracle, &mut cons);
        let opt = brute_force_best(
            || WeightedCoverage::new(cov.sets.clone(), cov.weights.clone()),
            make_cons,
            n,
        );
        let bound = opt / (1.0 + p as f64);
        assert!(
            greedy.value >= bound - 1e-9,
            "case {case}: greedy {} < OPT/(1+{p}) = {bound}",
            greedy.value
        );
    }
}

/// Lazy and plain greedy select sets of equal value.
#[test]
fn lazy_equals_plain() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7375_3034 + case);
        let cov = random_coverage(&mut rng);
        let budget = rng.gen_range(1..4usize);
        let n = cov.sets.len();
        let groups: Vec<usize> = (0..n).map(|e| e % 3).collect();
        let budgets = vec![budget; 3];
        let mut o1 = WeightedCoverage::new(cov.sets.clone(), cov.weights.clone());
        let mut c1 = PartitionMatroid::new(groups.clone(), budgets.clone());
        let mut o2 = WeightedCoverage::new(cov.sets.clone(), cov.weights.clone());
        let mut c2 = PartitionMatroid::new(groups.clone(), budgets.clone());
        let lazy = lazy_greedy(&mut o1, &mut c1);
        let plain = plain_greedy(&mut o2, &mut c2);
        assert!((lazy.value - plain.value).abs() < 1e-9, "case {case}");
    }
}

/// Pipage rounding yields integral, capacity-respecting solutions and
/// never decreases a linear objective.
#[test]
fn pipage_invariants() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7375_3035 + case);
        let n = rng.gen_range(2..8usize);
        let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..5.0)).collect();
        let mut x: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        let cap = rng.gen_range(1..5usize).min(n) as f64;
        let mass: f64 = x.iter().sum();
        if mass > cap {
            for v in &mut x {
                *v *= cap / mass;
            }
        }
        let before: f64 = x.iter().zip(&weights).map(|(v, w)| v * w).sum();
        let groups = vec![(0..n).collect::<Vec<_>>()];
        pipage_round(&mut x, &groups, &[cap], |i, _| weights[i]);
        let after: f64 = x.iter().zip(&weights).map(|(v, w)| v * w).sum();
        assert!(after >= before - 1e-9, "case {case}");
        assert!(x.iter().all(|&v| v == 0.0 || v == 1.0), "case {case}");
        assert!(x.iter().sum::<f64>() <= cap + 1e-9, "case {case}");
    }
}

/// Deterministic replay of a historical shrunken failure case for the
/// 1/2-approximation bound (empty sets and duplicate points).
#[test]
fn greedy_half_approximation_regression() {
    let cov = Coverage {
        sets: vec![vec![0, 0], vec![0], vec![1, 2], vec![]],
        weights: vec![1.9583814393503214, 2.521818764267787, 0.36280294435881205],
    };
    let n = cov.sets.len();
    let groups: Vec<usize> = (0..n).map(|e| e % 2).collect();
    let budgets = vec![1; 2];
    let mut oracle = WeightedCoverage::new(cov.sets.clone(), cov.weights.clone());
    let mut cons = PartitionMatroid::new(groups.clone(), budgets.clone());
    let greedy = lazy_greedy(&mut oracle, &mut cons);
    let opt = brute_force_best(
        || WeightedCoverage::new(cov.sets.clone(), cov.weights.clone()),
        || PartitionMatroid::new(groups.clone(), budgets.clone()),
        n,
    );
    assert!(greedy.value >= 0.5 * opt - 1e-9);
}

/// Knapsack feasibility is downward-closed: removing an element keeps the
/// remaining selection addable in some order.
#[test]
fn knapsack_downward_closed() {
    let mut k = Knapsack::new(vec![0, 0, 0], vec![1.0, 2.0, 3.0], vec![6.0]);
    assert!(k.can_add(0));
    k.insert(0);
    assert!(k.can_add(1));
    k.insert(1);
    assert!(k.can_add(2));
    k.insert(2);
    // Fresh instance: any subset of {0,1,2} is feasible in any order.
    for order in [[2, 1, 0], [1, 0, 2], [0, 2, 1]] {
        let mut k = Knapsack::new(vec![0, 0, 0], vec![1.0, 2.0, 3.0], vec![6.0]);
        for e in order {
            assert!(k.can_add(e));
            k.insert(e);
        }
    }
}
