//! Facade crate for the **jcr** stack: a Rust reproduction of
//! *Joint Caching and Routing in Cache Networks with Arbitrary Topology*
//! (ICDCS 2022).
//!
//! The stack jointly optimizes **content placement** (what each network
//! cache stores) and **routing** (which source and path serves each
//! request) to minimize total routing cost under cache and link capacity
//! constraints. This crate simply re-exports the member crates under short
//! module names; see each member for details:
//!
//! * [`ctx`] — solver context threaded through every solver: budgets
//!   (deadlines, per-phase iteration caps), instrumentation counters/timers,
//!   reusable scratch arenas, and the in-tree seeded PRNG.
//! * [`graph`] — directed-graph substrate (Dijkstra, Yen's k-shortest paths).
//! * [`lp`] — revised-simplex linear-programming solver with bounded
//!   variables and incremental columns (for column generation).
//! * [`flow`] — min-cost flow, flow decomposition, Skutella's unsplittable
//!   rounding, the paper's MSUFP Algorithm 2, multicommodity flow solvers.
//! * [`submodular`] — lazy greedy, matroid / p-independence constraints,
//!   pipage rounding.
//! * [`topo`] — ISP-like topology generation matching the paper's setups.
//! * [`trace`] — demand traces (Table-1 statistics), Gaussian-process
//!   demand prediction, Zipf workloads.
//! * [`core`] — the paper's algorithms (Algorithm 1, Algorithm 2,
//!   alternating optimization, heterogeneous-size extension) and all
//!   evaluated baselines.
//! * [`sim`] — request-level discrete-event simulation (Poisson arrivals,
//!   static vs reactive LRU/LFU policies) validating the fluid model.
//!
//! # Quickstart
//!
//! ```
//! use jcr::core::prelude::*;
//! use jcr::topo::{Topology, TopologyKind};
//!
//! // Build the paper's default edge-caching scenario on an Abovenet-like
//! // topology with a small synthetic catalog, then jointly optimize.
//! let topo = Topology::generate(TopologyKind::Abovenet, 7).expect("seeded generation succeeds");
//! let instance = InstanceBuilder::new(topo)
//!     .items(10)
//!     .cache_capacity(2.0)
//!     .zipf_demand(0.8, 1000.0, 11)
//!     .build()
//!     .expect("valid instance");
//! let solution = Algorithm1::new().solve(&instance).expect("solvable");
//! assert!(solution.placement.is_feasible(&instance));
//! ```

pub use jcr_core as core;
pub use jcr_ctx as ctx;
pub use jcr_flow as flow;
pub use jcr_graph as graph;
pub use jcr_lp as lp;
pub use jcr_sim as sim;
pub use jcr_submodular as submodular;
pub use jcr_topo as topo;
pub use jcr_trace as trace;
